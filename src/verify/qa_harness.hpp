// Explorer harness for the QA universal construction: a bounded
// workload over QaUniversal<S, Base> with full history capture, packaged
// as an ExploredRun so the schedule explorer can enumerate its
// interleavings and grade each one with the linearizability oracle.
//
// Each process runs its configured operation list through a
// HistoryRecorder; a bottom response is optionally chased with one query
// so the recorded fate is as resolved as the protocol allows. The run
// fingerprint covers the shared records, the object's private
// per-process state and the history fates -- everything the oracle
// verdict depends on up to operation intervals (which state-hash pruning
// deliberately abstracts; see explorer.hpp).
#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qa/qa_universal.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "verify/explorer.hpp"
#include "verify/history.hpp"
#include "verify/lin_oracle.hpp"

namespace tbwf::verify {

namespace detail {

template <class T>
  requires std::is_integral_v<T>
std::uint64_t fold_value(std::uint64_t h, T v) {
  return util::hash_mix(h, v);
}
template <class T>
std::uint64_t fold_value(std::uint64_t h, const std::vector<T>& v) {
  return util::hash_range(h, v);
}
template <class T>
std::uint64_t fold_value(std::uint64_t h, const std::deque<T>& v) {
  return util::hash_range(h, v);
}
inline std::uint64_t fold_value(std::uint64_t h,
                                const qa::CasCell::Result& r) {
  return util::hash_mix(util::hash_mix(h, r.success), r.old_value);
}
inline std::uint64_t fold_value(std::uint64_t h,
                                const qa::OnceRegister::Result& r) {
  return util::hash_mix(util::hash_mix(h, r.won), r.value);
}

}  // namespace detail

template <qa::Sequential S, class Base = qa::AtomicBase>
struct QaExploreConfig {
  int n = 2;
  std::uint64_t world_seed = 1;
  typename S::State initial{};
  /// ops[p] = the operations process p issues, in order.
  std::vector<std::vector<typename S::Op>> ops;
  /// Chase each bottom response with one query to resolve its fate.
  bool query_to_resolve = true;
  /// Protocol faults under test (all off = the real protocol).
  qa::QaMutations mutations{};
  /// Abort policy for AbortableBase stacks (must outlive the runs).
  registers::AbortPolicy* policy = nullptr;
  /// Oracle node budget per run.
  std::uint64_t oracle_max_states = 200000;
};

template <qa::Sequential S, class Base = qa::AtomicBase>
class QaExploredRun final : public ExploredRun {
 public:
  QaExploredRun(const QaExploreConfig<S, Base>& config,
                std::unique_ptr<sim::Schedule> schedule)
      : config_(config),
        world_(config.n, std::move(schedule), world_options(config)),
        object_(world_, config.initial, config.policy) {
    TBWF_ASSERT(static_cast<int>(config_.ops.size()) == config_.n,
                "QaExploreConfig::ops needs one op list per process");
    object_.set_mutations(config_.mutations);
    for (sim::Pid p = 0; p < config_.n; ++p) {
      world_.spawn(p, "qa-explore", [this](sim::SimEnv& env) {
        return worker(env, *this);
      });
    }
  }

  sim::World& world() override { return world_; }
  std::uint64_t seed() const override { return config_.world_seed; }

  std::uint64_t fingerprint() const override {
    std::uint64_t h = util::kFnvOffset;
    for (sim::Pid p = 0; p < config_.n; ++p) {
      h = fold_record(h, object_.peek_record(p));
      h = fold_record(h, object_.local_mine(p));
      h = fold_state_rec(h, object_.local_decided_rec(p));
      h = util::hash_mix(h, object_.round(p));
      h = util::hash_mix(h, object_.pending_uid(p));
      h = util::hash_mix(h, object_.pending_slot(p));
      h = util::hash_mix(h, object_.last_real_uid(p));
    }
    // History fates matter to the verdict; intervals are abstracted
    // (states merged across depths -- the documented best-effort cut).
    for (const HistoryOp<S>& op : recorder_.history()) {
      h = util::hash_mix(h, op.pid);
      h = util::hash_mix(h, op.status);
      h = util::hash_mix(h, op.responses);
      if (op.status == OpStatus::Ok) h = detail::fold_value(h, op.result);
    }
    return h;
  }

  std::string check() override {
    typename LinOracle<S>::Options opt;
    opt.max_states = config_.oracle_max_states;
    oracle_ = LinOracle<S>(opt).check(recorder_.history(), config_.initial);
    if (oracle_.linearizable()) return {};
    return oracle_.summary();
  }

  std::string describe() const override {
    std::ostringstream out;
    out << "history (" << recorder_.size() << " ops):\n"
        << recorder_.render();
    out << "oracle: " << oracle_.summary() << "\n";
    return out.str();
  }

  const OracleResult& oracle() const { return oracle_; }
  const HistoryRecorder<S>& recorder() const { return recorder_; }

 private:
  static sim::WorldOptions world_options(
      const QaExploreConfig<S, Base>& config) {
    sim::WorldOptions options;
    options.track_accesses = true;
    options.seed = config.world_seed;
    return options;
  }

  static sim::Task worker(sim::SimEnv& env, QaExploredRun& self) {
    const sim::Pid p = env.pid();
    for (const typename S::Op& op : self.config_.ops[p]) {
      auto response =
          co_await self.recorder_.invoke(self.object_, env, op);
      if (self.config_.query_to_resolve && response.bottom()) {
        (void)co_await self.recorder_.query(self.object_, env);
      }
    }
  }

  using Obj = qa::QaUniversal<S, Base>;

  static std::uint64_t fold_token(std::uint64_t h,
                                  const typename Obj::Token& t) {
    h = util::hash_mix(h, t.seq);
    h = util::hash_mix(h, t.round);
    return util::hash_mix(h, t.pid);
  }
  static std::uint64_t fold_state_rec(std::uint64_t h,
                                      const typename Obj::StateRec& r) {
    h = util::hash_mix(h, r.seq);
    h = detail::fold_value(h, r.state);
    h = util::hash_range(h, r.last_uid);
    h = util::hash_mix(h, r.last_result.size());
    for (const typename S::Result& res : r.last_result) {
      h = detail::fold_value(h, res);
    }
    return h;
  }
  static std::uint64_t fold_record(std::uint64_t h,
                                   const typename Obj::Record& rec) {
    h = fold_token(h, rec.promised);
    h = fold_token(h, rec.accepted);
    h = fold_state_rec(h, rec.accepted_state);
    return fold_state_rec(h, rec.decided);
  }

  QaExploreConfig<S, Base> config_;
  sim::World world_;
  Obj object_;
  HistoryRecorder<S> recorder_;
  OracleResult oracle_;
};

/// Factory adapter for Explorer. The config is copied into every run;
/// any policy pointer it carries must outlive the exploration.
template <qa::Sequential S, class Base = qa::AtomicBase>
RunFactory make_qa_run_factory(QaExploreConfig<S, Base> config) {
  return [config](std::unique_ptr<sim::Schedule> schedule)
             -> std::unique_ptr<ExploredRun> {
    return std::make_unique<QaExploredRun<S, Base>>(config,
                                                    std::move(schedule));
  };
}

/// Convenience: n processes, each issuing `ops_per_process` Counter
/// increments of distinct deltas -- the canonical explorer workload.
inline QaExploreConfig<qa::Counter> counter_explore_config(
    int n, int ops_per_process, std::uint64_t world_seed = 1) {
  QaExploreConfig<qa::Counter> config;
  config.n = n;
  config.world_seed = world_seed;
  config.ops.resize(n);
  for (int p = 0; p < n; ++p) {
    for (int k = 0; k < ops_per_process; ++k) {
      // Distinct powers of two: any lost or duplicated increment is
      // visible in every later Ok result.
      config.ops[p].push_back(
          qa::Counter::Op{std::int64_t{1} << (p * ops_per_process + k)});
    }
  }
  return config;
}

}  // namespace tbwf::verify
