// Wing-Gong linearizability oracle with memoization.
//
// Decides whether a finite invocation/response history of one object
// (recorded by HistoryRecorder<S>) is linearizable against S's
// sequential semantics. The search is the classic Wing-Gong algorithm
// refined with Lowe-style memoization: a DFS that extends a candidate
// linearization one operation at a time, caching (resolved-set, state)
// pairs so the exponential tree collapses to the distinct reachable
// configurations.
//
// T_QA fates map onto the search as follows:
//
//   Ok          REQUIRED: must appear in the linearization, inside its
//               real-time interval, and S::apply must reproduce the
//               recorded result;
//   Bottom /    OPTIONAL: may appear anywhere after its invocation (an
//   Pending     aborted accept can be adopted -- take effect -- after
//               its caller's response, so the interval is right-open),
//               with an unconstrained result;
//   NotApplied  FORBIDDEN: excluded from the candidate set entirely; if
//               the remaining required results cannot be explained
//               without it, the history is a VIOLATION -- an F-fated
//               operation whose effect is visible is exactly the bug
//               this catches.
//
// Candidate rule: an unresolved operation o may be linearized next iff
// no unresolved REQUIRED operation responded before o was invoked.
// Linearizing o force-drops every unresolved optional op whose response
// precedes o's invocation (they can no longer legally take effect).
// This is complete: any optional op that needs to take effect before o
// is itself a candidate at that point (its interval starts earlier).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qa/sequential_type.hpp"
#include "util/hash.hpp"
#include "verify/history.hpp"
#include "verify/oracle_result.hpp"

namespace tbwf::verify {

// -- state hashing ------------------------------------------------------------
//
// Memoization keys contain a digest of the sequential state. The canned
// sequential types (sequential_type.hpp) are all covered; a new type
// with a different State either satisfies one of these overloads or
// supplies its own via the oracle's StateHash template parameter.

struct DefaultStateHash {
  template <class T>
    requires std::is_integral_v<T>
  std::uint64_t operator()(const T& v) const {
    return util::hash_mix(util::kFnvOffset, v);
  }
  template <class T>
  std::uint64_t operator()(const std::vector<T>& v) const {
    return util::hash_range(util::kFnvOffset, v);
  }
  template <class T>
  std::uint64_t operator()(const std::deque<T>& v) const {
    return util::hash_range(util::kFnvOffset, v);
  }
};

// -- result equality ----------------------------------------------------------

template <class R>
bool results_equal(const R& a, const R& b) {
  if constexpr (requires(const R& x, const R& y) {
                  { x == y } -> std::convertible_to<bool>;
                }) {
    return a == b;
  } else {
    static_assert(sizeof(R) == 0,
                  "oracle needs operator== on S::Result (or a "
                  "results_equal overload)");
    return false;
  }
}

inline bool results_equal(const qa::CasCell::Result& a,
                          const qa::CasCell::Result& b) {
  return a.success == b.success && a.old_value == b.old_value;
}

inline bool results_equal(const qa::OnceRegister::Result& a,
                          const qa::OnceRegister::Result& b) {
  return a.won == b.won && a.value == b.value;
}

// -- the oracle ---------------------------------------------------------------

template <qa::Sequential S, class StateHash = DefaultStateHash>
class LinOracle {
 public:
  struct Options {
    /// DFS node budget; exceeding it yields kResourceLimit, never a
    /// false verdict.
    std::uint64_t max_states = 4'000'000;
  };

  explicit LinOracle(Options options = Options()) : options_(options) {}

  OracleResult check(const std::vector<HistoryOp<S>>& history,
                     typename S::State initial = typename S::State{}) {
    OracleResult out;
    out.ops = history.size();

    // Classify; duplicates with conflicting fates fail immediately.
    std::vector<std::size_t> live;  // indices of required + optional ops
    for (std::size_t i = 0; i < history.size(); ++i) {
      const HistoryOp<S>& h = history[i];
      if (h.duplicate_mismatch) {
        out.verdict = LinVerdict::kViolation;
        out.witness = "op #" + std::to_string(i) + " (p" +
                      std::to_string(h.pid) +
                      ") received conflicting duplicate responses";
        return out;
      }
      switch (h.status) {
        case OpStatus::Ok:
          ++out.required;
          live.push_back(i);
          break;
        case OpStatus::Bottom:
        case OpStatus::Pending:
          ++out.optional;
          live.push_back(i);
          break;
        case OpStatus::NotApplied:
          ++out.forbidden;
          break;  // excluded from the search
      }
    }

    if (live.size() > 64) {
      out.verdict = LinVerdict::kResourceLimit;
      out.witness = "history has " + std::to_string(live.size()) +
                    " live operations; the memoized search is capped at "
                    "64 -- check a shorter window";
      return out;
    }

    // Dense search arrays over the live ops.
    const std::size_t m = live.size();
    std::vector<sim::Step> inv(m), resp(m);
    std::vector<bool> req(m);
    for (std::size_t j = 0; j < m; ++j) {
      const HistoryOp<S>& h = history[live[j]];
      inv[j] = h.invoked_at;
      req[j] = h.status == OpStatus::Ok;
      // Optional ops have right-open intervals: a floating accept can be
      // adopted after its caller returned bottom.
      resp[j] = req[j] ? h.responded_at : kNoStep;
    }

    if (m == 0) {
      out.verdict = LinVerdict::kLinearizable;
      return out;
    }

    std::uint64_t required_mask = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (req[j]) required_mask |= 1ULL << j;
    }

    // memo[resolved-mask] = set of state digests already expanded there.
    std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
        memo;
    StateHash hash_state;

    struct Frame {
      std::uint64_t mask;
      typename S::State state;
      std::vector<std::size_t> order;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{0, std::move(initial), {}});

    // Best progress for the violation witness.
    std::size_t best_required = 0;
    std::uint64_t best_mask = 0;

    while (!stack.empty()) {
      if (++out.states_explored > options_.max_states) {
        out.verdict = LinVerdict::kResourceLimit;
        out.witness = "state budget exhausted after " +
                      std::to_string(options_.max_states) + " nodes";
        return out;
      }
      Frame frame = std::move(stack.back());
      stack.pop_back();

      if ((frame.mask & required_mask) == required_mask) {
        // Every required op explained; unresolved optionals are dropped.
        out.verdict = LinVerdict::kLinearizable;
        for (const std::size_t j : frame.order) out.order.push_back(live[j]);
        return out;
      }

      if (!memo[frame.mask].insert(hash_state(frame.state)).second) {
        ++out.memo_hits;
        continue;
      }

      const std::size_t done_required =
          static_cast<std::size_t>(std::popcount(frame.mask & required_mask));
      if (done_required > best_required ||
          (done_required == best_required &&
           std::popcount(frame.mask) >
               std::popcount(best_mask))) {
        best_required = done_required;
        best_mask = frame.mask;
      }

      // Earliest response among unresolved required ops bounds the
      // candidates: anything invoked after it must wait.
      sim::Step frontier = kNoStep;
      for (std::size_t j = 0; j < m; ++j) {
        if (req[j] && (frame.mask & (1ULL << j)) == 0) {
          frontier = std::min(frontier, resp[j]);
        }
      }

      for (std::size_t j = 0; j < m; ++j) {
        const std::uint64_t bit = 1ULL << j;
        if (frame.mask & bit) continue;
        // j itself may be the frontier op; it is always eligible then.
        if (inv[j] >= frontier && !(req[j] && resp[j] == frontier)) {
          continue;
        }

        typename S::State next_state = frame.state;
        const typename S::Result r =
            S::apply(next_state, history[live[j]].op);
        if (req[j] && !results_equal(r, history[live[j]].result)) continue;

        std::uint64_t next_mask = frame.mask | bit;
        // Force-drop optionals whose (real) response precedes j's
        // invocation; they can no longer legally take effect. Required
        // ops in that position make j ineligible -- but the frontier
        // rule above already excluded that case.
        for (std::size_t k = 0; k < m; ++k) {
          const std::uint64_t kbit = 1ULL << k;
          if ((next_mask & kbit) || req[k]) continue;
          const sim::Step kresp = history[live[k]].responded_at;
          if (kresp != kNoStep && kresp < inv[j]) next_mask |= kbit;
        }

        Frame child;
        child.mask = next_mask;
        child.state = std::move(next_state);
        child.order = frame.order;
        child.order.push_back(j);
        stack.push_back(std::move(child));
      }
    }

    out.verdict = LinVerdict::kViolation;
    {
      std::ostringstream w;
      w << "no linearization: best prefix explains " << best_required
        << "/" << std::popcount(required_mask)
        << " required ops; stuck required ops:";
      for (std::size_t j = 0; j < m; ++j) {
        if (req[j] && (best_mask & (1ULL << j)) == 0) {
          const HistoryOp<S>& h = history[live[j]];
          w << " #" << live[j] << "(p" << h.pid << ",[" << h.invoked_at
            << "," << h.responded_at << "])";
        }
      }
      out.witness = w.str();
    }
    return out;
  }

 private:
  Options options_;
};

/// Convenience: classify + check in one call with default options.
template <qa::Sequential S>
OracleResult check_linearizable(const std::vector<HistoryOp<S>>& history,
                                typename S::State initial =
                                    typename S::State{}) {
  return LinOracle<S>().check(history, std::move(initial));
}

}  // namespace tbwf::verify
