// Invocation/response histories of typed object operations.
//
// A HistoryRecorder<S> decorates calls into a qa::QaUniversal (or any
// object with the same invoke/query surface) and records, per operation,
// the invocation step, the response step, and the operation's *fate* in
// the T_QA sense:
//
//   Ok          the operation took effect exactly once and returned a
//               result -- the oracle must linearize it and the result
//               must match the sequential semantics;
//   Bottom      aborted, effect unknown -- the oracle MAY linearize it
//               (its effect can surface later via adoption) but nothing
//               constrains its result;
//   NotApplied  the paper's F -- the operation never took and never will
//               take effect; the oracle must NOT linearize it;
//   Pending     no response by the end of the run -- like Bottom, the
//               effect may or may not have happened.
//
// A later query that resolves a Bottom op's fate upgrades the recorded
// status in place (the paper's Figure 8 automaton: query reports the
// fate of the caller's last operation).
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qa/qa_object.hpp"
#include "qa/sequential_type.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"

namespace tbwf::verify {

enum class OpStatus : std::uint8_t { Ok, Bottom, NotApplied, Pending };

inline const char* to_string(OpStatus status) {
  switch (status) {
    case OpStatus::Ok:         return "ok";
    case OpStatus::Bottom:     return "bottom";
    case OpStatus::NotApplied: return "F";
    case OpStatus::Pending:    return "pending";
  }
  return "?";
}

inline constexpr sim::Step kNoStep = ~static_cast<sim::Step>(0);

template <qa::Sequential S>
struct HistoryOp {
  sim::Pid pid = sim::kNoPid;
  typename S::Op op{};
  typename S::Result result{};  ///< meaningful iff status == Ok
  OpStatus status = OpStatus::Pending;
  sim::Step invoked_at = 0;
  /// Step of the response that FIXED the fate (for an op resolved by a
  /// later query, the query's response step); kNoStep while pending.
  sim::Step responded_at = kNoStep;
  /// Responses delivered for this operation. A restart can re-deliver a
  /// response; >1 with equal results is benign, conflicting results are
  /// a violation the oracle reports directly.
  int responses = 0;
  bool duplicate_mismatch = false;
};

template <qa::Sequential S>
class HistoryRecorder {
 public:
  using Op = typename S::Op;
  using Result = typename S::Result;

  /// Open an operation interval; returns its history index.
  std::size_t begin(sim::Pid pid, Op op, sim::Step now) {
    HistoryOp<S> h;
    h.pid = pid;
    h.op = std::move(op);
    h.invoked_at = now;
    ops_.push_back(std::move(h));
    return ops_.size() - 1;
  }

  void end_ok(std::size_t idx, Result result, sim::Step now) {
    deliver(idx, OpStatus::Ok, std::move(result), now);
  }
  void end_bottom(std::size_t idx, sim::Step now) {
    deliver(idx, OpStatus::Bottom, Result{}, now);
  }
  void end_not_applied(std::size_t idx, sim::Step now) {
    deliver(idx, OpStatus::NotApplied, Result{}, now);
  }

  /// Record one T_QA response verbatim.
  void end(std::size_t idx, const qa::QaResponse<Result>& response,
           sim::Step now) {
    switch (response.tag) {
      case qa::QaTag::Ok:         end_ok(idx, response.value, now); break;
      case qa::QaTag::Bottom:     end_bottom(idx, now); break;
      case qa::QaTag::NotApplied: end_not_applied(idx, now); break;
    }
  }

  /// Invoke through a QA object, recording invocation + response.
  template <class QaObj>
  sim::Co<qa::QaResponse<Result>> invoke(QaObj& obj, sim::SimEnv& env,
                                         Op op) {
    const std::size_t idx = begin(env.pid(), op, env.now());
    qa::QaResponse<Result> res = co_await obj.invoke(env, std::move(op));
    end(idx, res, env.now());
    last_invoke_[static_cast<std::size_t>(env.pid())] = idx;
    co_return res;
  }

  /// Query through a QA object. A non-bottom query verdict settles the
  /// fate of the caller's last recorded invoke: Ok(v) upgrades a Bottom
  /// entry to Ok (its effect is now known to have happened, result v);
  /// F downgrades it to NotApplied (it never will).
  template <class QaObj>
  sim::Co<qa::QaResponse<Result>> query(QaObj& obj, sim::SimEnv& env) {
    qa::QaResponse<Result> res = co_await obj.query(env);
    const auto p = static_cast<std::size_t>(env.pid());
    if (last_invoke_.count(p) != 0 && !res.bottom()) {
      HistoryOp<S>& h = ops_[last_invoke_.at(p)];
      if (h.status == OpStatus::Bottom || h.status == OpStatus::Pending) {
        h.status = res.ok() ? OpStatus::Ok : OpStatus::NotApplied;
        if (res.ok()) h.result = res.value;
        h.responded_at = env.now();
      }
    }
    co_return res;
  }

  const std::vector<HistoryOp<S>>& history() const { return ops_; }
  std::vector<HistoryOp<S>>& mutable_history() { return ops_; }
  std::size_t size() const { return ops_.size(); }

  /// Render the history for counterexample artifacts / test logs.
  std::string render() const {
    std::string out;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const HistoryOp<S>& h = ops_[i];
      out += "  #" + std::to_string(i) + " p" + std::to_string(h.pid) +
             " [" + std::to_string(h.invoked_at) + ", " +
             (h.responded_at == kNoStep ? std::string("?")
                                        : std::to_string(h.responded_at)) +
             "] " + to_string(h.status) + "\n";
    }
    return out;
  }

 private:
  void deliver(std::size_t idx, OpStatus status, Result result,
               sim::Step now) {
    TBWF_ASSERT(idx < ops_.size(), "history index out of range");
    HistoryOp<S>& h = ops_[idx];
    ++h.responses;
    if (h.responses > 1) {
      // Duplicate delivery (e.g. a restarted process re-observing its
      // pre-crash response). Identical fates collapse; conflicting ones
      // are flagged for the oracle.
      if (h.status != status ||
          (status == OpStatus::Ok && !same_result(h.result, result))) {
        h.duplicate_mismatch = true;
      }
      return;
    }
    h.status = status;
    h.result = std::move(result);
    h.responded_at = now;
  }

  static bool same_result(const Result& a, const Result& b) {
    if constexpr (requires(const Result& x, const Result& y) {
                    { x == y } -> std::convertible_to<bool>;
                  }) {
      return a == b;
    } else {
      return true;  // incomparable results: trust the status match
    }
  }

  std::vector<HistoryOp<S>> ops_;
  std::map<std::size_t, std::size_t> last_invoke_;
};

}  // namespace tbwf::verify
