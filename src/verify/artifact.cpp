#include "verify/artifact.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tbwf::verify {

namespace {

constexpr const char* kMagic = "tbwf-counterexample v1";

/// The violation field is a single artifact line; fold newlines away.
std::string one_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::string CounterexampleArtifact::render() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "title: " << one_line(title) << "\n";
  out << "n: " << n << "\n";
  out << "world_seed: " << world_seed << "\n";
  out << "trace_digest: " << trace_digest << "\n";
  out << "schedule:";
  for (const sim::Pid p : schedule) out << ' ' << p;
  out << "\n";
  out << "violation: " << one_line(violation) << "\n";
  out << "details:\n" << details;
  if (!details.empty() && details.back() != '\n') out << "\n";
  return out.str();
}

bool CounterexampleArtifact::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

std::optional<CounterexampleArtifact> CounterexampleArtifact::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;

  CounterexampleArtifact art;
  bool have_schedule = false;
  while (std::getline(in, line)) {
    const auto starts = [&line](const char* prefix) {
      return line.rfind(prefix, 0) == 0;
    };
    if (starts("title: ")) {
      art.title = line.substr(7);
    } else if (starts("n: ")) {
      art.n = std::atoi(line.c_str() + 3);
    } else if (starts("world_seed: ")) {
      art.world_seed = std::strtoull(line.c_str() + 12, nullptr, 10);
    } else if (starts("trace_digest: ")) {
      art.trace_digest = std::strtoull(line.c_str() + 14, nullptr, 10);
    } else if (starts("schedule:")) {
      std::istringstream pids(line.substr(9));
      sim::Pid p;
      while (pids >> p) art.schedule.push_back(p);
      have_schedule = true;
    } else if (starts("violation: ")) {
      art.violation = line.substr(11);
    } else if (line == "details:") {
      std::ostringstream rest;
      rest << in.rdbuf();
      art.details = rest.str();
      break;
    }
  }
  if (art.n <= 0 || !have_schedule) return std::nullopt;
  return art;
}

std::string artifact_dir() {
  const char* dir = std::getenv("TBWF_ARTIFACT_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

std::string save_artifact(const CounterexampleArtifact& artifact,
                          const std::string& file_name) {
  const std::string dir = artifact_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + file_name;
  return artifact.save(path) ? path : std::string();
}

}  // namespace tbwf::verify
