#include "verify/explorer.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace tbwf::verify {

namespace {

/// The explorer's end of the Schedule seam: each World::step consumes
/// the single pid the explorer primed.
class ControlledSchedule final : public sim::Schedule {
 public:
  sim::Pid next(const sim::WorldView&) override { return next_; }
  void set(sim::Pid p) { next_ = p; }

 private:
  sim::Pid next_ = sim::kNoPid;
};

using AccessVec = std::vector<sim::StepAccess>;

/// Two steps conflict iff they touch the same register, at least one
/// writes, and neither access is inert (atomic invocation halves).
bool steps_conflict(const AccessVec& a, const AccessVec& b) {
  for (const sim::StepAccess& x : a) {
    if (x.reg == sim::kInvalidReg || x.inert) continue;
    for (const sim::StepAccess& y : b) {
      if (y.reg == sim::kInvalidReg || y.inert) continue;
      if (x.reg == y.reg && (x.write || y.write)) return true;
    }
  }
  return false;
}

/// A sleeping pid, with the accesses of the step it would take (valid
/// while it sleeps: a process that takes no step cannot change its next
/// action).
struct SleepEntry {
  sim::Pid pid = sim::kNoPid;
  AccessVec accesses;
};

struct Node {
  std::vector<sim::Pid> enabled;
  std::size_t next_choice = 0;            ///< next enabled index to try
  std::vector<bool> explored;             ///< parallel to enabled
  std::vector<AccessVec> explored_accesses;
  std::vector<SleepEntry> sleep;
  int preemptions = 0;                    ///< along the prefix to here
};

bool is_sleeping(const Node& node, sim::Pid p) {
  for (const SleepEntry& e : node.sleep) {
    if (e.pid == p) return true;
  }
  return false;
}

bool contains(const std::vector<sim::Pid>& pids, sim::Pid p) {
  return std::find(pids.begin(), pids.end(), p) != pids.end();
}

std::vector<sim::Pid> enabled_pids(const sim::World& world) {
  std::vector<sim::Pid> out;
  for (sim::Pid p = 0; p < world.n(); ++p) {
    if (world.runnable(p)) out.push_back(p);
  }
  return out;
}

std::uint64_t node_fingerprint(const ExploredRun& run, sim::World& world) {
  std::uint64_t h = run.fingerprint();
  for (sim::Pid p = 0; p < world.n(); ++p) {
    h = util::hash_mix(h, world.process_signature(p));
  }
  return h;
}

/// Advance node.next_choice past sleeping / preemption-barred choices;
/// true iff an untried viable choice remains (at node.next_choice).
bool advance_to_viable(Node& node, sim::Pid prev,
                       const ExplorerOptions& options, ExploreStats& stats) {
  while (node.next_choice < node.enabled.size()) {
    const sim::Pid cand = node.enabled[node.next_choice];
    if (options.sleep_sets && is_sleeping(node, cand)) {
      ++stats.sleep_skips;
      ++node.next_choice;
      continue;
    }
    const bool preempt =
        prev != sim::kNoPid && cand != prev && contains(node.enabled, prev);
    if (options.max_preemptions >= 0 && preempt &&
        node.preemptions + 1 > options.max_preemptions) {
      ++stats.preemption_skips;
      ++node.next_choice;
      continue;
    }
    return true;
  }
  return false;
}

Node make_node(const sim::World& world, int preemptions) {
  Node node;
  node.enabled = enabled_pids(world);
  node.explored.assign(node.enabled.size(), false);
  node.explored_accesses.resize(node.enabled.size());
  node.preemptions = preemptions;
  return node;
}

/// One prior expansion of a visited state: how much depth remained and
/// under which sleep set it was explored. Caching sleep-set-restricted
/// expansions by fingerprint alone is unsound (Godefroid): a revisit
/// with FEWER sleepers has more freedom below the same state, and
/// pruning it against a more-restricted earlier visit can hide real
/// interleavings (a dropped-fence queue mutation escaped exactly this
/// way). A revisit may only be pruned against a visit that was at
/// least as deep AND at least as permissive.
struct VisitEntry {
  std::size_t remaining = 0;
  std::vector<sim::Pid> sleep;  ///< sorted sleeping pids at expansion
};

std::vector<sim::Pid> sleep_pids(const Node& node) {
  std::vector<sim::Pid> out;
  out.reserve(node.sleep.size());
  for (const SleepEntry& e : node.sleep) out.push_back(e.pid);
  std::sort(out.begin(), out.end());
  return out;
}

/// a subseteq b, both sorted. A sleeping pid's pending accesses are a
/// function of the state, so comparing pid sets is enough under equal
/// fingerprints.
bool sleep_subset(const std::vector<sim::Pid>& a,
                  const std::vector<sim::Pid>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

Explorer::Explorer(RunFactory factory, ExplorerOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  TBWF_ASSERT(factory_ != nullptr, "explorer needs a run factory");
}

ExploreResult Explorer::explore() {
  ExploreResult result;
  ExploreStats& stats = result.stats;

  // stack[i] = node after i steps; path[i] = pid taken from stack[i].
  std::vector<Node> stack;
  std::vector<sim::Pid> path;
  // fingerprint -> prior expansions (remaining depth + sleep set each).
  std::unordered_map<std::uint64_t, std::vector<VisitEntry>> visited;

  for (;;) {
    if (stats.runs >= options_.max_runs) {
      stats.run_budget_exhausted = true;
      break;
    }

    auto schedule = std::make_unique<ControlledSchedule>();
    ControlledSchedule* ctl = schedule.get();
    std::unique_ptr<ExploredRun> run = factory_(std::move(schedule));
    sim::World& world = run->world();

    // Replay the committed prefix (deterministic: same seed, same pids).
    for (const sim::Pid p : path) {
      ctl->set(p);
      const bool ok = world.step();
      TBWF_ASSERT(ok, "explorer replay step rejected");
      ++stats.steps;
    }

    if (stack.empty()) {
      stack.push_back(make_node(world, 0));
      if (options_.state_pruning) {
        visited[node_fingerprint(*run, world)].push_back(
            VisitEntry{options_.max_depth, {}});
      }
    }

    // Extend first-viable-choice until a leaf.
    while (path.size() < options_.max_depth) {
      Node& node = stack.back();
      const sim::Pid prev = path.empty() ? sim::kNoPid : path.back();
      if (!advance_to_viable(node, prev, options_, stats)) break;

      const std::size_t ci = node.next_choice;
      const sim::Pid p = node.enabled[ci];
      const bool preempt =
          prev != sim::kNoPid && p != prev && contains(node.enabled, prev);

      ctl->set(p);
      const bool ok = world.step();
      TBWF_ASSERT(ok, "explorer step rejected");
      ++stats.steps;

      AccessVec accesses = world.last_step_accesses();
      node.explored[ci] = true;
      node.explored_accesses[ci] = accesses;
      ++node.next_choice;
      path.push_back(p);

      Node child = make_node(world, node.preemptions + (preempt ? 1 : 0));
      if (options_.sleep_sets) {
        // Inherit sleepers that don't conflict with the step just taken,
        // and put already-explored independent siblings to sleep.
        for (const SleepEntry& e : node.sleep) {
          if (e.pid != p && !steps_conflict(e.accesses, accesses)) {
            child.sleep.push_back(e);
          }
        }
        for (std::size_t j = 0; j < node.enabled.size(); ++j) {
          if (j == ci || !node.explored[j]) continue;
          const sim::Pid q = node.enabled[j];
          if (q != p && !is_sleeping(child, q) &&
              !steps_conflict(node.explored_accesses[j], accesses)) {
            child.sleep.push_back(SleepEntry{q, node.explored_accesses[j]});
          }
        }
      }

      bool pruned = false;
      if (options_.state_pruning) {
        const std::uint64_t fp = node_fingerprint(*run, world);
        const std::size_t remaining = options_.max_depth - path.size();
        const std::vector<sim::Pid> sleepers = sleep_pids(child);
        std::vector<VisitEntry>& entries = visited[fp];
        for (const VisitEntry& e : entries) {
          if (e.remaining >= remaining && sleep_subset(e.sleep, sleepers)) {
            pruned = true;
            ++stats.state_prunes;
            break;
          }
        }
        if (!pruned) {
          // This visit will explore at least as much as any entry it
          // dominates; drop those before recording it.
          std::erase_if(entries, [&](const VisitEntry& e) {
            return e.remaining <= remaining && sleep_subset(sleepers, e.sleep);
          });
          entries.push_back(VisitEntry{remaining, sleepers});
        }
      }
      if (pruned) {
        // Treat as an exhausted leaf: the earlier visit explored at
        // least this much depth below the same state.
        child.next_choice = child.enabled.size();
      }
      stack.push_back(std::move(child));
      if (pruned) break;
    }

    // One complete run: grade it.
    ++stats.runs;
    const std::string violation = run->check();
    if (!violation.empty()) {
      result.violation_found = true;
      CounterexampleArtifact& art = result.artifact;
      art.title = options_.name;
      art.n = world.n();
      art.world_seed = run->seed();
      art.trace_digest = world.trace().digest();
      art.schedule = path;
      art.violation = violation;
      art.details = run->describe();
      if (options_.minimize) minimize_artifact(art, stats);
      break;
    }

    // Backtrack to the deepest node with an untried viable choice.
    for (;;) {
      if (stack.empty()) break;
      Node& node = stack.back();
      const sim::Pid prev = path.empty() ? sim::kNoPid : path.back();
      if (advance_to_viable(node, prev, options_, stats)) break;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
    }
    if (stack.empty()) break;  // bounded space fully explored
  }

  stats.distinct_states = visited.size();
  return result;
}

void Explorer::minimize_artifact(CounterexampleArtifact& artifact,
                                 ExploreStats& stats) {
  const std::vector<sim::Pid> full = artifact.schedule;
  for (std::size_t len = 1; len <= full.size(); ++len) {
    std::vector<sim::Pid> prefix(full.begin(),
                                 full.begin() + static_cast<std::ptrdiff_t>(len));
    std::unique_ptr<ExploredRun> run =
        factory_(std::make_unique<sim::ScriptedSchedule>(prefix));
    const sim::Step taken = run->world().run(static_cast<sim::Step>(len));
    stats.steps += taken;
    const std::string violation = run->check();
    if (!violation.empty()) {
      artifact.schedule = std::move(prefix);
      artifact.violation = violation;
      artifact.trace_digest = run->world().trace().digest();
      artifact.details = run->describe();
      return;
    }
  }
  // The full schedule violates by construction; reaching here would mean
  // the run is not a deterministic function of its schedule.
  TBWF_ASSERT(false, "counterexample did not replay -- nondeterministic run");
}

std::string ExploreStats::summary() const {
  std::ostringstream out;
  out << "runs=" << runs << " steps=" << steps
      << " distinct_states=" << distinct_states
      << " sleep_skips=" << sleep_skips
      << " preemption_skips=" << preemption_skips
      << " state_prunes=" << state_prunes;
  if (run_budget_exhausted) out << " (run budget exhausted)";
  return out.str();
}

std::string ExploreResult::summary() const {
  std::ostringstream out;
  if (violation_found) {
    out << "VIOLATION after " << stats.runs << " runs: " << artifact.violation
        << "\n  minimized schedule length: " << artifact.schedule.size();
  } else {
    out << (clean() ? "CLEAN (bounded space exhausted)"
                    : "NO VIOLATION (budget exhausted)");
  }
  out << "\n  " << stats.summary();
  return out.str();
}

}  // namespace tbwf::verify
