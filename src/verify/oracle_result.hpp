// Type-erased verdict of a linearizability-oracle run.
//
// The oracle itself (lin_oracle.hpp) is templated on the sequential
// type; this plain struct is what crosses module boundaries -- the
// conformance grader (core/conformance.hpp) and the counterexample
// artifacts consume it without knowing the object type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tbwf::verify {

enum class LinVerdict : std::uint8_t {
  kLinearizable,   ///< a witness linearization was found
  kViolation,      ///< no linearization exists; witness explains why
  kResourceLimit,  ///< search gave up (state budget / too many ops)
};

const char* to_string(LinVerdict verdict);

struct OracleResult {
  LinVerdict verdict = LinVerdict::kLinearizable;
  /// Human-readable explanation: on kViolation, the stuck frontier (the
  /// required operations no candidate order can explain); on
  /// kLinearizable, empty.
  std::string witness;

  // History shape.
  std::size_t ops = 0;        ///< total operations in the history
  std::size_t required = 0;   ///< responded Ok: must linearize, result-checked
  std::size_t optional = 0;   ///< bottom/pending: may linearize
  std::size_t forbidden = 0;  ///< F (not applied): must NOT linearize

  // Search effort.
  std::uint64_t states_explored = 0;
  std::uint64_t memo_hits = 0;

  /// Indices into the checked history, in linearization order (only on
  /// kLinearizable; dropped optional ops are absent).
  std::vector<std::size_t> order;

  bool linearizable() const { return verdict == LinVerdict::kLinearizable; }

  std::string summary() const;
};

}  // namespace tbwf::verify
