// Explorer harness for the BATCHED QA engine: the same bounded workload
// and oracle grading as qa_harness.hpp, run against
// BatchedQaUniversal<S, Base> so the bounded-DFS explorer can drive the
// combiner seam -- announce interleavings, drain races, adoption of
// floating batches, tombstone sealing -- and the Wing-Gong oracle can
// judge every history in terms of the INNER type S (histories are over
// S ops/results; batching is invisible to the oracle, exactly as it
// must be to clients).
//
// The fingerprint covers the inner construction's records, the announce
// array, the engine's per-process progress state and the history fates.
#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qa/qa_batched.hpp"
#include "qa/qa_universal.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "verify/explorer.hpp"
#include "verify/history.hpp"
#include "verify/lin_oracle.hpp"
#include "verify/qa_harness.hpp"

namespace tbwf::verify {

template <qa::Sequential S, class Base = qa::AtomicBase>
struct QaBatchedExploreConfig {
  int n = 2;
  std::uint64_t world_seed = 1;
  typename S::State initial{};
  /// ops[p] = the operations process p issues, in order.
  std::vector<std::vector<typename S::Op>> ops;
  bool query_to_resolve = true;
  /// Engine tuning: small patience keeps explored runs short.
  typename qa::BatchedQaUniversal<S, Base>::Options engine{};
  /// Protocol faults under test (all off = the real engine).
  qa::BatchMutations mutations{};
  registers::AbortPolicy* policy = nullptr;
  std::uint64_t oracle_max_states = 200000;
};

template <qa::Sequential S, class Base = qa::AtomicBase>
class QaBatchedExploredRun final : public ExploredRun {
 public:
  QaBatchedExploredRun(const QaBatchedExploreConfig<S, Base>& config,
                       std::unique_ptr<sim::Schedule> schedule)
      : config_(config),
        world_(config.n, std::move(schedule), world_options(config)),
        object_(world_, config.initial, config.policy, config.engine) {
    TBWF_ASSERT(static_cast<int>(config_.ops.size()) == config_.n,
                "QaBatchedExploreConfig::ops needs one op list per process");
    object_.set_mutations(config_.mutations);
    for (sim::Pid p = 0; p < config_.n; ++p) {
      world_.spawn(p, "qa-batched-explore", [this](sim::SimEnv& env) {
        return worker(env, *this);
      });
    }
  }

  sim::World& world() override { return world_; }
  std::uint64_t seed() const override { return config_.world_seed; }

  std::uint64_t fingerprint() const override {
    std::uint64_t h = util::kFnvOffset;
    const auto& inner = object_.inner();
    for (sim::Pid p = 0; p < config_.n; ++p) {
      // Combiners hold drained batches in coroutine locals the folds
      // below cannot see; folding each process's own step count keeps
      // state pruning to genuinely commuted interleavings.
      h = util::hash_mix(h, world_.local_steps(p));
      h = fold_record(h, inner.peek_record(p));
      h = fold_record(h, inner.local_mine(p));
      h = fold_state_rec(h, inner.local_decided_rec(p));
      h = util::hash_mix(h, inner.round(p));
      h = fold_announce(h, object_.peek_announce(p));
      h = fold_announce(h, object_.local_announce(p));
      h = util::hash_mix(h, object_.last_real_uid(p));
    }
    for (const HistoryOp<S>& op : recorder_.history()) {
      h = util::hash_mix(h, op.pid);
      h = util::hash_mix(h, op.status);
      h = util::hash_mix(h, op.responses);
      if (op.status == OpStatus::Ok) h = detail::fold_value(h, op.result);
    }
    return h;
  }

  std::string check() override {
    typename LinOracle<S>::Options opt;
    opt.max_states = config_.oracle_max_states;
    oracle_ = LinOracle<S>(opt).check(recorder_.history(), config_.initial);
    if (oracle_.linearizable()) return {};
    return oracle_.summary();
  }

  std::string describe() const override {
    std::ostringstream out;
    out << "batched history (" << recorder_.size() << " ops):\n"
        << recorder_.render();
    out << "oracle: " << oracle_.summary() << "\n";
    return out.str();
  }

  const OracleResult& oracle() const { return oracle_; }
  const HistoryRecorder<S>& recorder() const { return recorder_; }
  const qa::BatchedQaUniversal<S, Base>& object() const { return object_; }

 private:
  using Obj = qa::BatchedQaUniversal<S, Base>;
  using Inner = typename Obj::Inner;

  static sim::WorldOptions world_options(
      const QaBatchedExploreConfig<S, Base>& config) {
    sim::WorldOptions options;
    options.track_accesses = true;
    options.seed = config.world_seed;
    return options;
  }

  static sim::Task worker(sim::SimEnv& env, QaBatchedExploredRun& self) {
    const sim::Pid p = env.pid();
    for (const typename S::Op& op : self.config_.ops[p]) {
      auto response = co_await self.recorder_.invoke(self.object_, env, op);
      if (self.config_.query_to_resolve && response.bottom()) {
        (void)co_await self.recorder_.query(self.object_, env);
      }
    }
  }

  static std::uint64_t fold_token(std::uint64_t h,
                                  const typename Inner::Token& t) {
    h = util::hash_mix(h, t.seq);
    h = util::hash_mix(h, t.round);
    return util::hash_mix(h, t.pid);
  }
  static std::uint64_t fold_state_rec(std::uint64_t h,
                                      const typename Inner::StateRec& r) {
    h = util::hash_mix(h, r.seq);
    h = detail::fold_value(h, r.state.inner);
    h = util::hash_range(h, r.state.done_uid);
    h = util::hash_range(h, r.state.done_void);
    h = util::hash_mix(h, r.state.done_result.size());
    for (const typename S::Result& res : r.state.done_result) {
      h = detail::fold_value(h, res);
    }
    h = util::hash_range(h, r.last_uid);
    return util::hash_range(h, r.last_result);
  }
  static std::uint64_t fold_record(std::uint64_t h,
                                   const typename Inner::Record& rec) {
    h = fold_token(h, rec.promised);
    h = fold_token(h, rec.accepted);
    h = fold_state_rec(h, rec.accepted_state);
    return fold_state_rec(h, rec.decided);
  }
  static std::uint64_t fold_announce(std::uint64_t h,
                                     const typename Obj::Announce& a) {
    h = util::hash_mix(h, a.uid);
    return util::hash_mix(h, a.has_op);
  }

  QaBatchedExploreConfig<S, Base> config_;
  sim::World world_;
  Obj object_;
  HistoryRecorder<S> recorder_;
  OracleResult oracle_;
};

/// Factory adapter for Explorer; the config is copied into every run.
template <qa::Sequential S, class Base = qa::AtomicBase>
RunFactory make_qa_batched_run_factory(QaBatchedExploreConfig<S, Base> config) {
  return [config](std::unique_ptr<sim::Schedule> schedule)
             -> std::unique_ptr<ExploredRun> {
    return std::make_unique<QaBatchedExploredRun<S, Base>>(
        config, std::move(schedule));
  };
}

/// The canonical batched explorer workload: n processes, each issuing
/// `ops_per_process` Counter increments of distinct powers of two (any
/// credited-but-dropped increment corrupts every later Ok result).
inline QaBatchedExploreConfig<qa::Counter> batched_counter_explore_config(
    int n, int ops_per_process, std::uint64_t world_seed = 1) {
  QaBatchedExploreConfig<qa::Counter> config;
  config.n = n;
  config.world_seed = world_seed;
  config.engine.patience = 1;
  config.engine.combine_attempts = 2;
  config.ops.resize(n);
  for (int p = 0; p < n; ++p) {
    for (int k = 0; k < ops_per_process; ++k) {
      config.ops[p].push_back(
          qa::Counter::Op{std::int64_t{1} << (p * ops_per_process + k)});
    }
  }
  return config;
}

}  // namespace tbwf::verify
