// Replayable counterexample artifacts.
//
// When the schedule explorer (or a mutation test) finds a violating run,
// it emits the run as a plain-text artifact: the world seed plus the
// exact pid schedule, which together replay the run bit-for-bit through
// sim::ScriptedSchedule. CI uploads these files; a developer feeds one
// back through CounterexampleArtifact::load and a ScriptedSchedule to
// reproduce the violation locally (docs/VERIFY.md walks through it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace tbwf::verify {

struct CounterexampleArtifact {
  std::string title;              ///< which harness / mutant produced it
  int n = 0;                      ///< process count of the run
  std::uint64_t world_seed = 0;   ///< WorldOptions::seed of the run
  std::uint64_t trace_digest = 0; ///< Trace::digest() of the violating run
  std::vector<sim::Pid> schedule; ///< pid per step; replay via ScriptedSchedule
  std::string violation;          ///< one-line verdict (oracle witness etc.)
  std::string details;            ///< free text: history dump, oracle summary

  /// Serialize to the line-oriented artifact format.
  std::string render() const;
  /// Write render() to `path`; false on I/O failure.
  bool save(const std::string& path) const;
  /// Parse a file written by save(); nullopt on malformed input.
  static std::optional<CounterexampleArtifact> load(const std::string& path);
};

/// Where artifacts go: $TBWF_ARTIFACT_DIR, or "" when unset (saving
/// disabled -- local test runs stay clean unless asked).
std::string artifact_dir();

/// Save into artifact_dir()/file_name when the dir is configured.
/// Returns the written path, or "" when disabled or on failure.
std::string save_artifact(const CounterexampleArtifact& artifact,
                          const std::string& file_name);

}  // namespace tbwf::verify
