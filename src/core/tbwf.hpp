// Public facade: build a complete TBWF system in a few lines.
//
//   sim::World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 1));
//   core::TbwfSystem<qa::Counter> sys(world, 0,
//                                     core::OmegaBackend::AtomicRegisters);
//   world.spawn(p, "app", [&](sim::SimEnv& env) -> sim::Task {
//     auto v = co_await sys.object().invoke(env, qa::Counter::Op{1});
//     ...
//   });
//   world.run(steps);
//
// The system owns an Omega-Delta implementation (Figure 3 over atomic
// registers, or Figure 6 over abortable registers), the query-abortable
// universal object (over atomic or abortable base registers, chosen by
// the Base template parameter), and the Figure 7 transformation tying
// them together. With OmegaBackend::AbortableRegisters and
// Base = qa::AbortableBase, the entire stack runs on abortable registers
// only -- Theorem 15.
#pragma once

#include <memory>
#include <variant>

#include "core/tbwf_object.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_registers.hpp"
#include "qa/qa_universal.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"

namespace tbwf::core {

enum class OmegaBackend {
  AtomicRegisters,     ///< Figure 3 (activity monitors + registers)
  AbortableRegisters,  ///< Figure 6 (messages + heartbeats, Section 6)
};

template <qa::Sequential S, class Base = qa::AtomicBase>
class TbwfSystem {
 public:
  /// `omega_policy` is required for OmegaBackend::AbortableRegisters;
  /// `qa_policy` is required when Base = qa::AbortableBase. Both must
  /// outlive the system. Omega-Delta is installed on every process.
  /// `omega_options` tunes the hardened Figure 4/6 channels (link
  /// health thresholds, silent-drop repair cadence) and only applies to
  /// the abortable backend.
  TbwfSystem(sim::World& world, typename S::State initial,
             OmegaBackend backend,
             registers::AbortPolicy* qa_policy = nullptr,
             registers::AbortPolicy* omega_policy = nullptr,
             omega::OmegaAbortable::Options omega_options =
                 omega::OmegaAbortable::Options()) {
    if (backend == OmegaBackend::AtomicRegisters) {
      omega_.template emplace<std::unique_ptr<omega::OmegaRegisters>>(
          std::make_unique<omega::OmegaRegisters>(world));
      std::get<std::unique_ptr<omega::OmegaRegisters>>(omega_)
          ->install_all();
    } else {
      TBWF_ASSERT(omega_policy != nullptr,
                  "abortable Omega-Delta needs an abort policy");
      omega_.template emplace<std::unique_ptr<omega::OmegaAbortable>>(
          std::make_unique<omega::OmegaAbortable>(world, omega_policy,
                                                  omega_options));
      std::get<std::unique_ptr<omega::OmegaAbortable>>(omega_)
          ->install_all();
    }
    object_ = std::make_unique<TbwfObject<S, Base>>(
        world, std::move(initial),
        [this](sim::Pid p) -> omega::OmegaIO& { return omega_io(p); },
        qa_policy);
  }

  TbwfObject<S, Base>& object() { return *object_; }

  omega::OmegaIO& omega_io(sim::Pid p) {
    if (auto* regs =
            std::get_if<std::unique_ptr<omega::OmegaRegisters>>(&omega_)) {
      return (*regs)->io(p);
    }
    return std::get<std::unique_ptr<omega::OmegaAbortable>>(omega_)->io(p);
  }

  /// The Figure 6 system, or nullptr with the atomic backend. Gives
  /// harnesses the per-link health counters and endpoint state.
  omega::OmegaAbortable* omega_abortable() {
    auto* ab =
        std::get_if<std::unique_ptr<omega::OmegaAbortable>>(&omega_);
    return ab != nullptr ? ab->get() : nullptr;
  }

 private:
  std::variant<std::unique_ptr<omega::OmegaRegisters>,
               std::unique_ptr<omega::OmegaAbortable>>
      omega_;
  std::unique_ptr<TbwfObject<S, Base>> object_;
};

}  // namespace tbwf::core
