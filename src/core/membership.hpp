// Epoch-based dynamic membership: the backend-neutral vocabulary for
// reconfiguration. A run starts in epoch 0 with every process a member;
// each membership event (join / leave / replace) bumps the epoch by one
// and edits the member set. Both backends elect over the *current*
// view only, and fence a departed member's in-flight writes (sim:
// epoch+membership check before every shared service write; rt:
// LeaseElector::revoke bumps the monotone fence so stale lease tokens
// fail validate()). The conformance checkers grade each epoch's stable
// suffix independently -- a reconfiguration must never earn an
// unearned wait-free verdict (see epoch_windows and the per-epoch
// grading in core/conformance).
//
// Event timestamps are backend-native: sim steps for FaultPlan,
// nanoseconds for RtFaultPlan. The epoch-window derivation below is
// unit-agnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tbwf::core {

enum class MembershipKind : std::uint8_t {
  kJoin,     ///< pid (re-)enters the election group
  kLeave,    ///< pid is removed; its in-flight writes must be fenced
  kReplace,  ///< pid leaves and `replacement` joins in one view change
};

const char* to_string(MembershipKind kind);

/// One seed-replayable reconfiguration event. `at` is in backend-native
/// units (sim steps or rt nanoseconds). Every event bumps the epoch by
/// exactly one, even when it is a membership no-op (joining a current
/// member, removing a non-member): the epoch counts *view changes*, and
/// fencing keys off the epoch, not the set.
struct MembershipEvent {
  MembershipKind kind = MembershipKind::kLeave;
  int pid = 0;
  /// Only meaningful for kReplace: the pid that joins.
  int replacement = -1;
  std::uint64_t at = 0;
};

std::string describe(const MembershipEvent& event);

/// One epoch's view: half-open time window [from, to) and the member
/// set in force throughout it. Zero-length windows (two events at the
/// same timestamp) are legal and trivially inconclusive.
struct EpochWindow {
  std::uint32_t epoch = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::vector<bool> members;  ///< size n, members[p] == p is in the view

  int member_count() const {
    return static_cast<int>(std::count(members.begin(), members.end(), true));
  }
};

/// Derive the epoch timeline for a run of n processes: epoch 0 spans
/// [0, first event) with everyone a member; each event starts the next
/// epoch at its timestamp; the last epoch runs to `run_end`. Events are
/// applied in timestamp order (stable for ties).
std::vector<EpochWindow> epoch_windows(
    int n, std::vector<MembershipEvent> events, std::uint64_t run_end);

}  // namespace tbwf::core
