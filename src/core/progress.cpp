#include "core/progress.hpp"

#include <algorithm>
#include <sstream>

namespace tbwf::core {

ProgressReport analyze_progress(const OpLog& log, sim::Step run_end,
                                sim::Step warmup, sim::Step max_gap,
                                const std::vector<sim::Pid>& issuing) {
  ProgressReport report;
  const int n = static_cast<int>(log.completions.size());
  report.per_process.resize(n);
  for (sim::Pid p = 0; p < n; ++p) {
    ProcessProgress& pp = report.per_process[p];
    pp.pid = p;
    pp.completed = log.completed(p);
    const bool issues =
        std::find(issuing.begin(), issuing.end(), p) != issuing.end();
    if (!issues) continue;

    // Gap analysis over [warmup, run_end].
    sim::Step last = warmup;
    sim::Step worst = 0;
    for (const sim::Step c : log.completions[p]) {
      if (c < warmup) continue;
      if (c - last > worst) worst = c - last;
      last = c;
    }
    if (run_end > last && run_end - last > worst) worst = run_end - last;
    pp.max_completion_gap = worst;
    pp.progressing = (worst <= max_gap);
    if (pp.progressing) report.progressing.push_back(p);
  }
  return report;
}

std::string ProgressReport::summary() const {
  std::ostringstream os;
  for (const auto& pp : per_process) {
    os << "p" << pp.pid << ": completed=" << pp.completed
       << " max_gap=" << pp.max_completion_gap
       << (pp.progressing ? " [progressing]" : "") << "\n";
  }
  return os.str();
}

TbwfVerdict check_tbwf(const ProgressReport& report,
                       const std::vector<sim::Pid>& timely) {
  TbwfVerdict verdict;
  verdict.holds = true;
  for (const sim::Pid p : timely) {
    if (!report.of(p).progressing) {
      verdict.holds = false;
      verdict.violators.push_back(p);
    }
  }
  return verdict;
}

std::string TbwfVerdict::summary() const {
  std::ostringstream os;
  os << (holds ? "TBWF holds" : "TBWF VIOLATED");
  if (!violators.empty()) {
    os << "; starved timely processes:";
    for (const auto p : violators) os << " p" << p;
  }
  return os.str();
}

}  // namespace tbwf::core
