// Post-run TBWF conformance checker for chaos runs.
//
// Given the trace of a run driven by a FaultPlan, the checker re-derives
// each process's *realized* timeliness from the trace alone -- the plan
// only tells it where the phase boundaries are -- and asserts the
// paper's graded guarantees (Theorem 14 / Section 2) over the stable
// suffix after the last fault:
//
//   - every suffix-timely process that keeps issuing operations is
//     wait-free there: its completion gaps stay bounded;
//   - if at least one issuing process is suffix-timely, the object is
//     lock-free: the merged completion stream has bounded gaps;
//   - if exactly one process takes steps in the suffix (everyone else
//     crashed or silent) and it issues operations, it completes at
//     least one: obstruction-freedom.
//
// Every violation message carries the plan seed, so a red sweep case
// replays deterministically from the message alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch_log.hpp"
#include "core/tbwf_object.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_trace.hpp"
#include "sim/faultplan.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "util/metrics.hpp"
#include "verify/oracle_result.hpp"

namespace tbwf::core {

struct ConformanceOptions {
  /// A process with realized bound <= timely_bound in the stable suffix
  /// counts as timely there (Definition 1, empirically).
  sim::Step timely_bound = 64;
  /// Steps granted after the last plan event before the stable suffix
  /// starts: elections must re-stabilize, wounded operations drain.
  sim::Step stabilization = 100000;
  /// Wait-freedom bound: max steps between consecutive completions of a
  /// timely process in the suffix (and from the suffix start to its
  /// first completion, and from its last completion to the run end).
  sim::Step max_completion_gap = 100000;
  /// The suffix must be at least this long or the checker flags the run
  /// as inconclusive rather than silently passing on a too-short tail.
  sim::Step min_suffix = 100000;
};

/// Realized per-process timeliness in one plan phase [from, to):
/// the empirical bound restricted to the window, Trace::kNever when the
/// process took no step there.
struct WindowTimeliness {
  sim::Step from = 0;
  sim::Step to = 0;
  std::vector<sim::Step> realized_bound;  ///< indexed by pid
};

/// One epoch's independent verdict under a reconfiguring plan. Time is
/// backend-native (global steps for sim, wall-clock ns for rt), widened
/// to uint64 so both checkers share the struct. A reconfiguration must
/// never let a clean final view lend an unearned wait-free verdict to a
/// churned middle: each epoch is graded over its OWN stable sub-suffix.
struct EpochGrade {
  std::uint32_t epoch = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  /// The view in force during the epoch, indexed by pid/tid.
  std::vector<bool> members;
  /// An epoch is conclusive iff its sub-suffix -- from the last fault
  /// edge strictly inside the window (the view change at the boundary
  /// already anchors the start) plus stabilization -- is at least
  /// min_suffix long. Inconclusive mid-run epochs are reported, never
  /// violated: a window too short to judge earns nothing and owes
  /// nothing.
  bool conclusive = false;
  std::uint64_t suffix_from = 0;
  /// Members empirically timely in the epoch's sub-suffix (populated
  /// for conclusive epochs only).
  std::vector<int> suffix_timely;
};

struct ConformanceReport {
  bool ok = false;
  std::uint64_t plan_seed = 0;
  sim::Step suffix_from = 0;
  sim::Step run_end = 0;
  /// Processes empirically timely (w.r.t. timely_bound) in the suffix.
  std::vector<sim::Pid> suffix_timely;
  /// Processes the plan leaves reachable only over suppressed links
  /// through the suffix (FaultPlan::channel_degraded). They are graded
  /// untimely no matter what the trace shows: activity a peer can never
  /// observe over the faulted medium earns no wait-free verdict.
  std::vector<sim::Pid> channel_degraded;
  /// A silent-drop window on a live pair's message register covers the
  /// whole suffix (FaultPlan::link_partitioned): the reader's counter
  /// view freezes with no evidence to detect it, so leadership can
  /// deadlock on a mutually-stale minimum. The checker demands no
  /// completion guarantees -- not even lock-freedom -- over such a
  /// window (and, symmetrically, awards none).
  bool link_partitioned = false;
  /// Realized timeliness per plan phase, for diagnostics.
  std::vector<WindowTimeliness> windows;
  /// Per-epoch independent grading; populated only when the plan has
  /// membership events. Violations inside an epoch carry an
  /// "epoch <e>:" prefix.
  std::vector<EpochGrade> epoch_grades;
  std::vector<std::string> violations;

  std::string summary() const;
};

/// Check one finished chaos run. `issuing` lists the pids whose workload
/// keeps issuing operations to the end of the run (only they are held to
/// completion guarantees). `metrics`, when given, receives per-process
/// fault/recovery counters (chaos.crashes.p<i>, chaos.restarts.p<i>) and
/// the checker verdict tallies.
ConformanceReport check_chaos_conformance(
    const sim::Trace& trace, const OpLog& log, const sim::FaultPlan& plan,
    const std::vector<sim::Pid>& issuing, const ConformanceOptions& options,
    util::Counters* metrics = nullptr);

// -- batch-epoch front-end ------------------------------------------------------
//
// The batched throughput engine (qa/qa_batched.hpp) commits one BATCH
// of announced ops per decided slot, so the paper's graded guarantees
// restate per *batch epoch* (= one committed batch):
//
//   timely => wait-free     every announce by a suffix-timely process
//                           is INCLUDED in a committed batch within
//                           max_inclusion_batches epochs of its
//                           announce (and within max_inclusion_steps);
//   one timely => lock-free while any announce is pending in the
//                           suffix, some batch commits within
//                           max_commit_gap steps of it -- the merged
//                           batch stream never stalls against demand;
//   solo => obstruction-free a suffix with announces and at least one
//                           live announcer must commit at least one
//                           batch.
//
// The same run can therefore be judged twice -- per-op by
// check_chaos_conformance over the completion log, per-epoch by
// check_batch_conformance over the batch log -- and the two verdicts
// must agree (tests/batch_conformance_test.cpp asserts they do).

struct BatchConformanceOptions {
  /// Stable-suffix window [suffix_from, run_end) the guarantees are
  /// judged over (take them from a per-op ConformanceReport to compare
  /// verdicts on the same footing).
  sim::Step suffix_from = 0;
  sim::Step run_end = 0;
  /// Announcers held to the per-op inclusion bound (suffix-timely).
  std::vector<sim::Pid> timely;
  /// Wait-freedom: max committed batches between a timely announce and
  /// its inclusion.
  std::uint64_t max_inclusion_batches = 16;
  /// Wait-freedom: max steps between a timely announce and inclusion.
  sim::Step max_inclusion_steps = 100000;
  /// Lock-freedom: max steps an announce may pend with no batch
  /// committing at all.
  sim::Step max_commit_gap = 100000;
  /// Announces younger than this at run end are excused (still in
  /// flight when the run stopped).
  sim::Step end_grace = 100000;
};

struct BatchConformanceReport {
  bool ok = false;
  sim::Step suffix_from = 0;
  sim::Step run_end = 0;
  /// Batches committed inside the judged window.
  std::uint64_t suffix_commits = 0;
  /// Announces judged (timely owners, inside the window, not excused).
  std::uint64_t judged_announces = 0;
  /// Largest observed announce-to-inclusion distance, in batch epochs.
  std::uint64_t max_inclusion_observed = 0;
  double mean_batch_size = 0.0;
  std::vector<std::string> violations;

  std::string summary() const;
};

/// Judge one finished batched run against the per-batch-epoch
/// restatement of the graded guarantees.
BatchConformanceReport check_batch_conformance(
    const BatchLog& log, const BatchConformanceOptions& options);

// -- rt front-end --------------------------------------------------------------
//
// The same graded-guarantee judgement over a REAL-THREAD run: the
// RtTrace's wall-clock nanoseconds play the role of the simulator's
// global step counter (a thread is timely in a window iff its activity
// events are never further apart than the bound -- Definition 1 with ns
// as the time unit), and the RtFaultPlan supplies the last fault edge
// after which the stable suffix begins. Because the OS can deschedule
// any thread at any time, the checker never asserts who SHOULD be
// timely -- it derives who WAS, then holds the run to exactly the
// guarantee that grade earns:
//
//   kWaitFree        every issuing thread was timely -> each must
//                    complete with bounded gaps;
//   kLockFree        >= 1 issuing thread timely -> the merged
//                    completion stream must have bounded gaps (each
//                    timely issuing thread is still held to its
//                    wait-freedom bound);
//   kObstructionFree exactly one thread stepped -> it must complete;
//   kNone            nothing derivable (no issuing activity).

enum class RtGuaranteeGrade : std::uint8_t {
  kWaitFree,
  kLockFree,
  kObstructionFree,
  kNone,
};

const char* to_string(RtGuaranteeGrade grade);

struct RtConformanceOptions {
  /// A thread whose suffix activity gaps stay <= this is timely there.
  std::uint64_t timely_bound_ns = 2000000;  // 2 ms
  /// Grace after the plan's last fault before the suffix starts
  /// (re-election must settle, wounded operations drain).
  std::uint64_t stabilization_ns = 3000000;  // 3 ms
  /// The suffix must be at least this long or the run is inconclusive.
  std::uint64_t min_suffix_ns = 5000000;  // 5 ms
  /// Completion-gap bound for the wait-free / lock-free checks.
  std::uint64_t max_completion_gap_ns = 10000000;  // 10 ms
};

struct RtConformanceReport {
  static constexpr std::uint64_t kNeverNs = ~0ULL;

  bool ok = false;
  std::uint64_t plan_seed = 0;
  RtGuaranteeGrade grade = RtGuaranteeGrade::kNone;
  /// A Jam reg-fault window covers the whole stable suffix: the shared
  /// medium serves nothing there, so the checker demands no completions
  /// and awards no grade -- wait-freedom a jammed register cannot earn
  /// is never reported.
  bool medium_jammed = false;
  /// Tids whose clock the plan faulted inside (or within distortion
  /// reach of) the stable suffix: graded untimely regardless of their
  /// trace -- timestamps a faulted clock stamped can neither earn a
  /// timely verdict nor carry blame for one (the clock twin of the sim
  /// checker's channel_degraded escape).
  std::vector<std::uint32_t> clock_degraded;
  std::uint64_t suffix_from_ns = 0;
  std::uint64_t run_end_ns = 0;
  /// Empirical suffix timeliness bound per tid (kNeverNs = silent/dead).
  std::vector<std::uint64_t> realized_bound_ns;
  std::vector<std::uint32_t> suffix_timely;
  /// Tids that invoked at least one operation in the suffix.
  std::vector<std::uint32_t> issuing;
  /// Lease-holder death/stall -> next acquisition by anyone, full run.
  util::Histogram reelection_ns;
  /// Per-epoch independent grading; populated only when the plan has
  /// membership events (see EpochGrade).
  std::vector<EpochGrade> epoch_grades;
  std::vector<std::string> violations;

  std::string summary() const;
};

/// Judge one finished supervised rt run. `metrics`, when given, receives
/// per-thread fault counters (rt.conformance.kills.t<i>, .stalls.t<i>,
/// .restarts.t<i>), re-election latency tallies (rt.reelect.count,
/// rt.reelect.max_ns) and the verdict (rt.conformance.{ok,violated}).
RtConformanceReport check_rt_conformance(const rt::RtTraceSnapshot& trace,
                                         const rt::RtFaultPlan& plan,
                                         const RtConformanceOptions& options,
                                         util::Counters* metrics = nullptr);

// -- safety x progress grading --------------------------------------------------
//
// The verify layer (src/verify/) adds a SAFETY verdict -- the
// linearizability oracle over a captured history -- next to the
// conformance checker's PROGRESS verdict. A GradedRunReport holds both,
// so one run is judged on both axes: an algorithm that completes
// operations briskly but returns non-linearizable results fails, and so
// does one that is safe but starves a timely process.

/// Type-erased safety verdict (built from verify::OracleResult via
/// safety_from_oracle, or filled by hand for runs graded another way).
struct SafetySummary {
  bool checked = false;  ///< false = no oracle ran (progress-only run)
  bool ok = true;
  std::string verdict;  ///< "LINEARIZABLE" / "VIOLATION" / "RESOURCE_LIMIT"
  std::string witness;  ///< non-empty on failure
};

/// Map an oracle result onto a SafetySummary. kResourceLimit counts as
/// NOT ok: a verdict the oracle could not establish must not pass.
SafetySummary safety_from_oracle(const verify::OracleResult& oracle);

struct GradedRunReport {
  ConformanceReport progress;
  SafetySummary safety;

  bool ok() const { return progress.ok && (!safety.checked || safety.ok); }
  std::string summary() const;
};

/// Combine the two verdicts; `metrics`, when given, receives
/// graded.{ok,safety_violation,progress_violation} tallies.
GradedRunReport grade_run(ConformanceReport progress, SafetySummary safety,
                          util::Counters* metrics = nullptr);

// -- SLO x progress grading -----------------------------------------------------
//
// The soak harness (src/soak/) adds a SERVICE verdict next to the
// progress verdict: client-visible latency and availability budgets
// over the whole run. The two are judged independently on purpose --
// heavy mid-run churn with a clean tail passes progress conformance
// (the graded guarantees are suffix properties) yet can blow the SLO's
// cumulative budgets, and a medium the plan jammed through the suffix
// voids every progress demand while the SLO still fails the frozen
// service. A ServiceRunReport holds both and says which axis failed.

/// Type-erased SLO verdict (built from soak::SloReport via
/// soak::slo_summary, or filled by hand). Mirrors SafetySummary:
/// `checked` false = no SLO was graded (progress-only run).
struct SloSummary {
  bool checked = false;
  bool ok = true;
  std::string verdict;  ///< "SLO-OK" / "SLO-VIOLATED" / "SLO-INCONCLUSIVE"
  std::vector<std::string> violations;
};

struct ServiceRunReport {
  bool progress_ok = false;
  /// The progress checker's full human-readable report.
  std::string progress_summary;
  SloSummary slo;

  bool ok() const { return progress_ok && (!slo.checked || slo.ok); }
  std::string summary() const;
};

/// Join the verdicts of a sim soak run; `metrics`, when given, receives
/// service.{ok,slo_violation,progress_violation} tallies.
ServiceRunReport grade_service_run(const ConformanceReport& progress,
                                   SloSummary slo,
                                   util::Counters* metrics = nullptr);
/// Same join for an rt soak run.
ServiceRunReport grade_service_run(const RtConformanceReport& progress,
                                   SloSummary slo,
                                   util::Counters* metrics = nullptr);

}  // namespace tbwf::core
