#include "core/membership.hpp"

#include <sstream>

namespace tbwf::core {

const char* to_string(MembershipKind kind) {
  switch (kind) {
    case MembershipKind::kJoin:
      return "join";
    case MembershipKind::kLeave:
      return "leave";
    case MembershipKind::kReplace:
      return "replace";
  }
  return "?";
}

std::string describe(const MembershipEvent& event) {
  std::ostringstream out;
  out << to_string(event.kind) << " p" << event.pid;
  if (event.kind == MembershipKind::kReplace) {
    out << "->p" << event.replacement;
  }
  out << " @" << event.at;
  return out.str();
}

std::vector<EpochWindow> epoch_windows(int n,
                                       std::vector<MembershipEvent> events,
                                       std::uint64_t run_end) {
  std::stable_sort(events.begin(), events.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.at < b.at;
                   });

  std::vector<EpochWindow> windows;
  EpochWindow current;
  current.epoch = 0;
  current.from = 0;
  current.members.assign(static_cast<std::size_t>(n), true);

  auto set_member = [&](int pid, bool in) {
    if (pid >= 0 && pid < n) {
      current.members[static_cast<std::size_t>(pid)] = in;
    }
  };

  for (const MembershipEvent& event : events) {
    current.to = event.at;
    windows.push_back(current);
    current.epoch += 1;
    current.from = event.at;
    switch (event.kind) {
      case MembershipKind::kJoin:
        set_member(event.pid, true);
        break;
      case MembershipKind::kLeave:
        set_member(event.pid, false);
        break;
      case MembershipKind::kReplace:
        set_member(event.pid, false);
        set_member(event.replacement, true);
        break;
    }
  }
  current.to = run_end;
  windows.push_back(current);
  return windows;
}

}  // namespace tbwf::core
