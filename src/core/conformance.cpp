#include "core/conformance.hpp"

#include <algorithm>
#include <sstream>

namespace tbwf::core {

namespace {

/// Largest gap between consecutive completions of the stream inside
/// [from, to], counting the lead-in from `from` to the first completion
/// and the tail from the last completion to `to`. The stream is the
/// (already sorted) completion-step vector; entries before `from` are
/// warm-up and ignored.
sim::Step max_completion_gap_in(const std::vector<sim::Step>& completions,
                                sim::Step from, sim::Step to) {
  sim::Step best = 0;
  sim::Step prev = from;
  for (const sim::Step c : completions) {
    if (c < from) continue;
    if (c > to) break;
    best = std::max(best, c - prev);
    prev = c;
  }
  return std::max(best, to - prev);
}

}  // namespace

std::string ConformanceReport::summary() const {
  std::ostringstream out;
  out << "conformance plan seed=" << plan_seed << " run_end=" << run_end
      << " suffix_from=" << suffix_from << " suffix_timely={";
  for (std::size_t i = 0; i < suffix_timely.size(); ++i) {
    out << (i ? "," : "") << "p" << suffix_timely[i];
  }
  out << "} " << (ok ? "OK" : "VIOLATED") << "\n";
  for (const auto& w : windows) {
    out << "  window [" << w.from << ", " << w.to << ") bounds:";
    for (std::size_t p = 0; p < w.realized_bound.size(); ++p) {
      out << " p" << p << "=";
      if (w.realized_bound[p] == sim::Trace::kNever) {
        out << "inf";
      } else {
        out << w.realized_bound[p];
      }
    }
    out << "\n";
  }
  for (const auto& v : violations) out << "  VIOLATION: " << v << "\n";
  return out.str();
}

ConformanceReport check_chaos_conformance(
    const sim::Trace& trace, const OpLog& log, const sim::FaultPlan& plan,
    const std::vector<sim::Pid>& issuing, const ConformanceOptions& options,
    util::Counters* metrics) {
  const int n = trace.n();
  ConformanceReport report;
  report.plan_seed = plan.seed();
  report.run_end = trace.now();
  report.suffix_from = plan.last_event_step() + options.stabilization;

  const auto violate = [&](const std::string& what) {
    std::ostringstream out;
    out << "plan seed=" << plan.seed() << ": " << what;
    report.violations.push_back(out.str());
  };
  const auto is_issuing = [&](sim::Pid p) {
    return std::find(issuing.begin(), issuing.end(), p) != issuing.end();
  };

  // Realized timeliness per plan phase (diagnostics + stutter checks).
  const std::vector<sim::Step> edges = plan.phase_boundaries(report.run_end);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    WindowTimeliness w;
    w.from = edges[i];
    w.to = edges[i + 1];
    w.realized_bound.resize(static_cast<std::size_t>(n), sim::Trace::kNever);
    for (sim::Pid p = 0; p < n; ++p) {
      if (trace.steps_of_in(p, w.from, w.to) == 0) continue;
      w.realized_bound[static_cast<std::size_t>(p)] =
          trace.max_gap_in(p, w.from, w.to) + 1;
    }
    report.windows.push_back(std::move(w));
  }

  // The world must have ended in the state the plan prescribes; a
  // mismatch means the plan was not (fully) installed.
  for (sim::Pid p = 0; p < n; ++p) {
    if (trace.crashed(p) != plan.crashed_at_end(p)) {
      std::ostringstream out;
      out << "p" << p << " is " << (trace.crashed(p) ? "crashed" : "alive")
          << " at run end but the plan says "
          << (plan.crashed_at_end(p) ? "crashed" : "alive");
      violate(out.str());
    }
  }

  if (report.run_end < report.suffix_from + options.min_suffix) {
    std::ostringstream out;
    out << "stable suffix too short: run_end=" << report.run_end
        << " < suffix_from=" << report.suffix_from << " + min_suffix="
        << options.min_suffix << " (inconclusive, lengthen the run)";
    violate(out.str());
    report.ok = report.violations.empty();
    return report;
  }

  // Who is empirically timely in the stable suffix (Definition 1)?
  std::vector<sim::Step> suffix_bound(static_cast<std::size_t>(n),
                                      sim::Trace::kNever);
  for (sim::Pid p = 0; p < n; ++p) {
    if (trace.crashed(p)) continue;
    if (trace.steps_of_in(p, report.suffix_from, report.run_end) == 0) {
      continue;
    }
    const sim::Step bound =
        trace.max_gap_in(p, report.suffix_from, report.run_end) + 1;
    suffix_bound[static_cast<std::size_t>(p)] = bound;
    if (bound <= options.timely_bound) report.suffix_timely.push_back(p);
  }

  // Graded guarantee 1 -- wait-freedom for the timely: every
  // suffix-timely issuing process keeps completing with bounded gaps.
  for (const sim::Pid p : report.suffix_timely) {
    if (!is_issuing(p)) continue;
    const sim::Step gap = max_completion_gap_in(
        log.completions[static_cast<std::size_t>(p)], report.suffix_from,
        report.run_end);
    if (gap > options.max_completion_gap) {
      std::ostringstream out;
      out << "wait-freedom: p" << p << " is timely in the suffix (bound "
          << suffix_bound[static_cast<std::size_t>(p)]
          << ") but its completion gap " << gap << " exceeds "
          << options.max_completion_gap;
      violate(out.str());
    }
  }

  // Graded guarantee 2 -- lock-freedom with >= 1 timely process: the
  // merged completion stream of all issuing processes keeps moving.
  const bool any_timely_issuing =
      std::any_of(report.suffix_timely.begin(), report.suffix_timely.end(),
                  is_issuing);
  if (any_timely_issuing) {
    std::vector<sim::Step> merged;
    for (const sim::Pid p : issuing) {
      const auto& cs = log.completions[static_cast<std::size_t>(p)];
      merged.insert(merged.end(), cs.begin(), cs.end());
    }
    std::sort(merged.begin(), merged.end());
    const sim::Step gap =
        max_completion_gap_in(merged, report.suffix_from, report.run_end);
    if (gap > options.max_completion_gap) {
      std::ostringstream out;
      out << "lock-freedom: some issuing process is timely but the merged "
             "completion gap "
          << gap << " exceeds " << options.max_completion_gap;
      violate(out.str());
    }
  }

  // Graded guarantee 3 -- obstruction-freedom: a process running solo in
  // the suffix (everyone else crashed or silent) must complete.
  std::vector<sim::Pid> steppers;
  for (sim::Pid p = 0; p < n; ++p) {
    if (trace.steps_of_in(p, report.suffix_from, report.run_end) > 0) {
      steppers.push_back(p);
    }
  }
  if (steppers.size() == 1 && is_issuing(steppers.front())) {
    const sim::Pid p = steppers.front();
    const auto& cs = log.completions[static_cast<std::size_t>(p)];
    const bool completed_in_suffix =
        std::any_of(cs.begin(), cs.end(), [&](sim::Step c) {
          return c >= report.suffix_from && c <= report.run_end;
        });
    if (!completed_in_suffix) {
      std::ostringstream out;
      out << "obstruction-freedom: p" << p
          << " runs solo in the suffix but never completes";
      violate(out.str());
    }
  }

  report.ok = report.violations.empty();

  if (metrics != nullptr) {
    for (sim::Pid p = 0; p < n; ++p) {
      const std::string pid = std::to_string(p);
      metrics->inc("chaos.crashes.p" + pid, trace.crash_count(p));
      metrics->inc("chaos.restarts.p" + pid, trace.restart_count(p));
    }
    metrics->inc(report.ok ? "chaos.conformance.ok"
                           : "chaos.conformance.violated");
    metrics->inc("chaos.conformance.violations", report.violations.size());
  }

  return report;
}

}  // namespace tbwf::core
