#include "core/conformance.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace tbwf::core {

namespace {

/// Largest gap between consecutive completions of the stream inside
/// [from, to], counting the lead-in from `from` to the first completion
/// and the tail from the last completion to `to`. The stream is the
/// (already sorted) completion-step vector; entries before `from` are
/// warm-up and ignored.
sim::Step max_completion_gap_in(const std::vector<sim::Step>& completions,
                                sim::Step from, sim::Step to) {
  sim::Step best = 0;
  sim::Step prev = from;
  for (const sim::Step c : completions) {
    if (c < from) continue;
    if (c > to) break;
    best = std::max(best, c - prev);
    prev = c;
  }
  return std::max(best, to - prev);
}

/// Shared epoch-grade pretty-printer ("p" for sim pids, "t" for rt
/// tids, "step"/"ns" for the time unit).
void append_epoch_lines(std::ostringstream& out,
                        const std::vector<EpochGrade>& grades,
                        const char* who, const char* unit) {
  for (const auto& g : grades) {
    out << "  epoch " << g.epoch << " [" << g.from << unit << ", " << g.to
        << unit << ") members={";
    bool first = true;
    for (std::size_t p = 0; p < g.members.size(); ++p) {
      if (!g.members[p]) continue;
      out << (first ? "" : ",") << who << p;
      first = false;
    }
    out << "} ";
    if (!g.conclusive) {
      out << "inconclusive (sub-suffix too short)\n";
      continue;
    }
    out << "suffix_from=" << g.suffix_from << unit << " timely={";
    for (std::size_t i = 0; i < g.suffix_timely.size(); ++i) {
      out << (i ? "," : "") << who << g.suffix_timely[i];
    }
    out << "}\n";
  }
}

}  // namespace

std::string ConformanceReport::summary() const {
  std::ostringstream out;
  out << "conformance plan seed=" << plan_seed << " run_end=" << run_end
      << " suffix_from=" << suffix_from << " suffix_timely={";
  for (std::size_t i = 0; i < suffix_timely.size(); ++i) {
    out << (i ? "," : "") << "p" << suffix_timely[i];
  }
  if (!channel_degraded.empty()) {
    out << "} degraded={";
    for (std::size_t i = 0; i < channel_degraded.size(); ++i) {
      out << (i ? "," : "") << "p" << channel_degraded[i];
    }
  }
  out << "}" << (link_partitioned ? " (link partitioned)" : "") << " "
      << (ok ? "OK" : "VIOLATED") << "\n";
  for (const auto& w : windows) {
    out << "  window [" << w.from << ", " << w.to << ") bounds:";
    for (std::size_t p = 0; p < w.realized_bound.size(); ++p) {
      out << " p" << p << "=";
      if (w.realized_bound[p] == sim::Trace::kNever) {
        out << "inf";
      } else {
        out << w.realized_bound[p];
      }
    }
    out << "\n";
  }
  append_epoch_lines(out, epoch_grades, "p", "");
  for (const auto& v : violations) out << "  VIOLATION: " << v << "\n";
  return out.str();
}

ConformanceReport check_chaos_conformance(
    const sim::Trace& trace, const OpLog& log, const sim::FaultPlan& plan,
    const std::vector<sim::Pid>& issuing, const ConformanceOptions& options,
    util::Counters* metrics) {
  const int n = trace.n();
  ConformanceReport report;
  report.plan_seed = plan.seed();
  report.run_end = trace.now();
  report.suffix_from = plan.last_event_step() + options.stabilization;

  const auto violate = [&](const std::string& what) {
    std::ostringstream out;
    out << "plan seed=" << plan.seed() << ": " << what;
    report.violations.push_back(out.str());
  };
  const auto is_issuing = [&](sim::Pid p) {
    return std::find(issuing.begin(), issuing.end(), p) != issuing.end();
  };

  // Realized timeliness per plan phase (diagnostics + stutter checks).
  const std::vector<sim::Step> edges = plan.phase_boundaries(report.run_end);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    WindowTimeliness w;
    w.from = edges[i];
    w.to = edges[i + 1];
    w.realized_bound.resize(static_cast<std::size_t>(n), sim::Trace::kNever);
    for (sim::Pid p = 0; p < n; ++p) {
      if (trace.steps_of_in(p, w.from, w.to) == 0) continue;
      w.realized_bound[static_cast<std::size_t>(p)] =
          trace.max_gap_in(p, w.from, w.to) + 1;
    }
    report.windows.push_back(std::move(w));
  }

  // The world must have ended in the state the plan prescribes; a
  // mismatch means the plan was not (fully) installed.
  for (sim::Pid p = 0; p < n; ++p) {
    if (trace.crashed(p) != plan.crashed_at_end(p)) {
      std::ostringstream out;
      out << "p" << p << " is " << (trace.crashed(p) ? "crashed" : "alive")
          << " at run end but the plan says "
          << (plan.crashed_at_end(p) ? "crashed" : "alive");
      violate(out.str());
    }
  }

  // Per-epoch grading under reconfiguration: each epoch earns its own
  // verdict over its own stable sub-suffix, so a clean final view can
  // never lend an unearned wait-free verdict to a churned middle.
  // Graded BEFORE the whole-run inconclusive gate: a view thrash that
  // eats the global tail still gets its early epochs judged.
  if (!plan.membership().empty()) {
    const std::vector<sim::Step> fault_edges =
        plan.phase_boundaries(report.run_end);
    for (const core::EpochWindow& w :
         plan.epoch_timeline(n, report.run_end)) {
      EpochGrade g;
      g.epoch = w.epoch;
      g.from = w.from;
      g.to = w.to;
      g.members = w.members;
      // Anchor on the last fault edge strictly inside the window; the
      // view change at the boundary already anchors the epoch start.
      sim::Step anchor = w.from;
      for (const sim::Step e : fault_edges) {
        if (e > w.from && e < w.to) anchor = std::max(anchor, e);
      }
      g.suffix_from = anchor + options.stabilization;
      g.conclusive = g.suffix_from + options.min_suffix <= w.to;
      if (g.conclusive) {
        const std::vector<sim::Pid> degraded =
            plan.channel_degraded(n, g.suffix_from, w.to);
        const bool partitioned =
            plan.link_partitioned(n, g.suffix_from, w.to);
        for (sim::Pid p = 0; p < n; ++p) {
          if (!w.members[static_cast<std::size_t>(p)]) continue;
          if (trace.steps_of_in(p, g.suffix_from, w.to) == 0) continue;
          const sim::Step bound =
              trace.max_gap_in(p, g.suffix_from, w.to) + 1;
          if (bound > options.timely_bound) continue;
          if (std::find(degraded.begin(), degraded.end(), p) !=
              degraded.end()) {
            continue;
          }
          g.suffix_timely.push_back(p);
          if (partitioned || !is_issuing(p)) continue;
          const sim::Step gap = max_completion_gap_in(
              log.completions[static_cast<std::size_t>(p)],
              g.suffix_from, w.to);
          if (gap > options.max_completion_gap) {
            std::ostringstream out;
            out << "epoch " << w.epoch << ": wait-freedom: p" << p
                << " is a timely member of the epoch's sub-suffix (bound "
                << bound << ") but its completion gap " << gap
                << " exceeds " << options.max_completion_gap;
            violate(out.str());
          }
        }
      }
      report.epoch_grades.push_back(std::move(g));
    }
  }

  if (report.run_end < report.suffix_from + options.min_suffix) {
    std::ostringstream out;
    out << "stable suffix too short: run_end=" << report.run_end
        << " < suffix_from=" << report.suffix_from << " + min_suffix="
        << options.min_suffix << " (inconclusive, lengthen the run)";
    violate(out.str());
    report.ok = report.violations.empty();
    return report;
  }

  // Who is empirically timely in the stable suffix (Definition 1)?
  // A pid the plan leaves reachable only over jam-dead channels is
  // graded untimely regardless of its trace: no peer can observe its
  // activity over the faulted medium, so the checker must not hold it
  // to -- nor count it towards -- any wait-free guarantee it cannot
  // have earned there.
  report.channel_degraded =
      plan.channel_degraded(n, report.suffix_from, report.run_end);
  const auto is_degraded = [&](sim::Pid p) {
    return std::find(report.channel_degraded.begin(),
                     report.channel_degraded.end(),
                     p) != report.channel_degraded.end();
  };
  std::vector<sim::Step> suffix_bound(static_cast<std::size_t>(n),
                                      sim::Trace::kNever);
  for (sim::Pid p = 0; p < n; ++p) {
    if (trace.crashed(p)) continue;
    if (trace.steps_of_in(p, report.suffix_from, report.run_end) == 0) {
      continue;
    }
    const sim::Step bound =
        trace.max_gap_in(p, report.suffix_from, report.run_end) + 1;
    suffix_bound[static_cast<std::size_t>(p)] = bound;
    // A pid outside the view the plan leaves in force is fenced from
    // leadership: like a channel-degraded pid it is graded untimely --
    // no guarantee is demanded of it and none is counted through it.
    if (bound <= options.timely_bound && !is_degraded(p) &&
        plan.member_at_end(n, p)) {
      report.suffix_timely.push_back(p);
    }
  }

  // A silent message-register drop on a live pair through the whole
  // suffix is undetectable -- writes report success, reads stay valid --
  // so the frozen counter view can deadlock leadership on a
  // mutually-stale minimum. No completion guarantee is judgeable there:
  // the checker demands none (and the sweeps assert none is awarded).
  report.link_partitioned =
      plan.link_partitioned(n, report.suffix_from, report.run_end);

  // Graded guarantee 1 -- wait-freedom for the timely: every
  // suffix-timely issuing process keeps completing with bounded gaps.
  for (const sim::Pid p : report.suffix_timely) {
    if (report.link_partitioned) break;  // unjudgeable, demand nothing
    if (!is_issuing(p)) continue;
    const sim::Step gap = max_completion_gap_in(
        log.completions[static_cast<std::size_t>(p)], report.suffix_from,
        report.run_end);
    if (gap > options.max_completion_gap) {
      std::ostringstream out;
      out << "wait-freedom: p" << p << " is timely in the suffix (bound "
          << suffix_bound[static_cast<std::size_t>(p)]
          << ") but its completion gap " << gap << " exceeds "
          << options.max_completion_gap;
      violate(out.str());
    }
  }

  // Graded guarantee 2 -- lock-freedom with >= 1 timely process: the
  // merged completion stream of all issuing processes keeps moving.
  const bool any_timely_issuing =
      std::any_of(report.suffix_timely.begin(), report.suffix_timely.end(),
                  is_issuing);
  if (any_timely_issuing && !report.link_partitioned) {
    std::vector<sim::Step> merged;
    for (const sim::Pid p : issuing) {
      const auto& cs = log.completions[static_cast<std::size_t>(p)];
      merged.insert(merged.end(), cs.begin(), cs.end());
    }
    std::sort(merged.begin(), merged.end());
    const sim::Step gap =
        max_completion_gap_in(merged, report.suffix_from, report.run_end);
    if (gap > options.max_completion_gap) {
      std::ostringstream out;
      out << "lock-freedom: some issuing process is timely but the merged "
             "completion gap "
          << gap << " exceeds " << options.max_completion_gap;
      violate(out.str());
    }
  }

  // Graded guarantee 3 -- obstruction-freedom: a process running solo in
  // the suffix (everyone else crashed or silent) must complete.
  std::vector<sim::Pid> steppers;
  for (sim::Pid p = 0; p < n; ++p) {
    if (trace.steps_of_in(p, report.suffix_from, report.run_end) > 0) {
      steppers.push_back(p);
    }
  }
  if (steppers.size() == 1 && is_issuing(steppers.front())) {
    const sim::Pid p = steppers.front();
    const auto& cs = log.completions[static_cast<std::size_t>(p)];
    const bool completed_in_suffix =
        std::any_of(cs.begin(), cs.end(), [&](sim::Step c) {
          return c >= report.suffix_from && c <= report.run_end;
        });
    if (!completed_in_suffix) {
      std::ostringstream out;
      out << "obstruction-freedom: p" << p
          << " runs solo in the suffix but never completes";
      violate(out.str());
    }
  }

  report.ok = report.violations.empty();

  if (metrics != nullptr) {
    for (sim::Pid p = 0; p < n; ++p) {
      const std::string pid = std::to_string(p);
      metrics->inc("chaos.crashes.p" + pid, trace.crash_count(p));
      metrics->inc("chaos.restarts.p" + pid, trace.restart_count(p));
    }
    for (const sim::Pid p : report.channel_degraded) {
      metrics->inc("chaos.channel_degraded.p" + std::to_string(p));
    }
    if (report.link_partitioned) {
      metrics->inc("chaos.conformance.link_partitioned");
    }
    metrics->inc("chaos.conformance.link_faults",
                 plan.link_faults().size());
    metrics->inc("chaos.conformance.epochs", report.epoch_grades.size());
    for (const auto& g : report.epoch_grades) {
      if (g.conclusive) metrics->inc("chaos.conformance.epochs_conclusive");
    }
    metrics->inc(report.ok ? "chaos.conformance.ok"
                           : "chaos.conformance.violated");
    metrics->inc("chaos.conformance.violations", report.violations.size());
  }

  return report;
}

// -- rt front-end --------------------------------------------------------------

namespace {

/// Largest gap between consecutive timestamps of the (sorted) vector
/// inside [from, to], counting lead-in and tail. Mirrors
/// max_completion_gap_in for wall-clock nanoseconds.
std::uint64_t max_ns_gap_in(const std::vector<std::uint64_t>& times,
                            std::uint64_t from, std::uint64_t to) {
  std::uint64_t best = 0;
  std::uint64_t prev = from;
  for (const std::uint64_t t : times) {
    if (t < from) continue;
    if (t > to) break;
    best = std::max(best, t - prev);
    prev = t;
  }
  return std::max(best, to - prev);
}

}  // namespace

const char* to_string(RtGuaranteeGrade grade) {
  switch (grade) {
    case RtGuaranteeGrade::kWaitFree:
      return "wait-free";
    case RtGuaranteeGrade::kLockFree:
      return "lock-free";
    case RtGuaranteeGrade::kObstructionFree:
      return "obstruction-free";
    case RtGuaranteeGrade::kNone:
      return "none";
  }
  return "?";
}

std::string RtConformanceReport::summary() const {
  std::ostringstream out;
  out << "rt conformance plan seed=" << plan_seed
      << " grade=" << to_string(grade)
      << (medium_jammed ? " (medium jammed)" : "");
  if (!clock_degraded.empty()) {
    out << " clock-degraded={";
    for (std::size_t i = 0; i < clock_degraded.size(); ++i) {
      out << (i ? "," : "") << "t" << clock_degraded[i];
    }
    out << "}";
  }
  out << " run_end=" << run_end_ns
      << "ns suffix_from=" << suffix_from_ns << "ns timely={";
  for (std::size_t i = 0; i < suffix_timely.size(); ++i) {
    out << (i ? "," : "") << "t" << suffix_timely[i];
  }
  out << "} issuing={";
  for (std::size_t i = 0; i < issuing.size(); ++i) {
    out << (i ? "," : "") << "t" << issuing[i];
  }
  out << "} " << (ok ? "OK" : "VIOLATED") << "\n  suffix bounds:";
  for (std::size_t t = 0; t < realized_bound_ns.size(); ++t) {
    out << " t" << t << "=";
    if (realized_bound_ns[t] == kNeverNs) {
      out << "inf";
    } else {
      out << realized_bound_ns[t] << "ns";
    }
  }
  out << "\n";
  if (!reelection_ns.empty()) {
    out << "  re-election: " << reelection_ns.summary() << "\n";
  }
  append_epoch_lines(out, epoch_grades, "t", "ns");
  for (const auto& v : violations) out << "  VIOLATION: " << v << "\n";
  return out.str();
}

RtConformanceReport check_rt_conformance(const rt::RtTraceSnapshot& trace,
                                         const rt::RtFaultPlan& plan,
                                         const RtConformanceOptions& options,
                                         util::Counters* metrics) {
  const int n = trace.n();
  RtConformanceReport report;
  report.plan_seed = plan.seed();
  report.run_end_ns = trace.run_end_ns;
  // A faulted clock must not define the common timeline either: each
  // trace ring is stamped by its owning thread, so a forward-skewed
  // seat stamps its final events PAST the honest end of the run,
  // handing every well-clocked tid a phantom tail gap ~= the skew --
  // blame the lying timestamps cannot support. Anchor run_end at the
  // last event a never-clock-faulted tid stamped (the snapshot max is
  // kept only if no seat escaped the fault family).
  if (!plan.clock_faults().empty()) {
    std::uint64_t honest_end = 0;
    for (int t = 0; t < n; ++t) {
      const auto faulted = [&](const rt::RtClockFaultEvent& c) {
        return c.tid == static_cast<std::uint32_t>(t);
      };
      if (std::any_of(plan.clock_faults().begin(),
                      plan.clock_faults().end(), faulted)) {
        continue;
      }
      for (const rt::RtEvent& ev :
           trace.per_tid[static_cast<std::size_t>(t)]) {
        honest_end = std::max(honest_end, ev.at_ns);
      }
    }
    if (honest_end != 0) report.run_end_ns = honest_end;
  }
  report.suffix_from_ns = plan.last_event_ns() + options.stabilization_ns;
  report.realized_bound_ns.assign(static_cast<std::size_t>(n),
                                  RtConformanceReport::kNeverNs);

  // A tid whose clock the plan faulted within distortion reach of the
  // suffix stamped its suffix events with a lying clock: it is graded
  // untimely (no unearned wait-freedom through it) and excused from
  // every per-tid demand (no blame its timestamps cannot support).
  for (int t = 0; t < n; ++t) {
    if (plan.clock_faulted_in(static_cast<std::uint32_t>(t),
                              report.suffix_from_ns, report.run_end_ns)) {
      report.clock_degraded.push_back(static_cast<std::uint32_t>(t));
    }
  }
  const auto is_clock_degraded = [&](std::uint32_t t) {
    return std::find(report.clock_degraded.begin(),
                     report.clock_degraded.end(),
                     t) != report.clock_degraded.end();
  };

  const auto violate = [&](const std::string& what) {
    std::ostringstream out;
    out << "rt plan seed=" << plan.seed() << ": " << what;
    report.violations.push_back(out.str());
  };

  // Re-election latency over the whole run: a lease holder that dies or
  // stalls leaves the object leaderless until the next acquisition.
  {
    constexpr std::uint32_t kNoHolder = 0xFFFFFFFFu;
    std::uint32_t holder = kNoHolder;
    std::uint64_t leaderless_since = RtConformanceReport::kNeverNs;
    for (const rt::RtEvent& ev : trace.merged()) {
      switch (ev.kind) {
        case rt::RtEventKind::kLeaseAcquire:
          if (leaderless_since != RtConformanceReport::kNeverNs) {
            report.reelection_ns.add(ev.at_ns - leaderless_since);
            leaderless_since = RtConformanceReport::kNeverNs;
          }
          holder = ev.tid;
          break;
        case rt::RtEventKind::kLeaseRelease:
          if (ev.tid == holder) holder = kNoHolder;
          break;
        case rt::RtEventKind::kKill:
        case rt::RtEventKind::kStall:
          if (ev.tid == holder &&
              leaderless_since == RtConformanceReport::kNeverNs) {
            leaderless_since = ev.at_ns;
            holder = kNoHolder;
          }
          break;
        default:
          break;
      }
    }
  }

  // The trace must cover the suffix: a ring that overflowed past the
  // suffix start cannot prove or refute anything.
  for (int t = 0; t < n; ++t) {
    const auto& events = trace.per_tid[static_cast<std::size_t>(t)];
    if (trace.dropped[static_cast<std::size_t>(t)] > 0 &&
        (events.empty() || events.front().at_ns > report.suffix_from_ns)) {
      std::ostringstream out;
      out << "t" << t << " trace ring overflowed into the suffix ("
          << trace.dropped[static_cast<std::size_t>(t)]
          << " events dropped); grow trace_capacity";
      violate(out.str());
    }
  }

  // Per-epoch grading under reconfiguration (the rt mirror of the sim
  // checker's block): each epoch earns its own verdict over its own
  // stable sub-suffix, graded BEFORE the whole-run inconclusive gate so
  // a view thrash that eats the global tail still gets its early
  // epochs judged.
  if (!plan.membership().empty()) {
    // Fault edges, mirroring last_event_ns but kept individually so an
    // epoch can anchor on the last edge inside its own window.
    std::vector<std::uint64_t> fault_edges;
    for (const rt::RtKill& k : plan.kills()) {
      fault_edges.push_back(k.at_ns);
      if (k.restart_after_ns > 0) {
        fault_edges.push_back(k.at_ns + k.restart_after_ns);
      }
    }
    for (const rt::RtStall& s : plan.stalls()) {
      fault_edges.push_back(s.at_ns);
      fault_edges.push_back(s.at_ns + s.duration_ns);
    }
    for (const rt::RtStorm& s : plan.storms()) {
      fault_edges.push_back(s.from_ns);
      fault_edges.push_back(s.to_ns);
    }
    for (const rt::RtRegFaultEvent& r : plan.reg_faults()) {
      fault_edges.push_back(r.from_ns);
      if (r.to_ns != rt::RtAbortInjector::kForeverNs) {
        fault_edges.push_back(r.to_ns);
      }
    }
    for (const rt::RtClockFaultEvent& c : plan.clock_faults()) {
      fault_edges.push_back(c.from_ns);
      if (c.to_ns != rt::RtClockFaultEvent::kForeverNs) {
        fault_edges.push_back(c.to_ns);
      }
    }
    for (const core::EpochWindow& w :
         plan.epoch_timeline(n, report.run_end_ns)) {
      EpochGrade g;
      g.epoch = w.epoch;
      g.from = w.from;
      g.to = w.to;
      g.members = w.members;
      std::uint64_t anchor = w.from;
      for (const std::uint64_t e : fault_edges) {
        if (e > w.from && e < w.to) anchor = std::max(anchor, e);
      }
      g.suffix_from = anchor + options.stabilization_ns;
      g.conclusive = g.suffix_from + options.min_suffix_ns <= w.to;
      // A ring that overflowed past this epoch's sub-suffix has evicted
      // the evidence; the epoch is unjudgeable, not violated.
      for (int t = 0; t < n && g.conclusive; ++t) {
        const auto& events = trace.per_tid[static_cast<std::size_t>(t)];
        if (trace.dropped[static_cast<std::size_t>(t)] > 0 &&
            (events.empty() || events.front().at_ns > g.suffix_from)) {
          g.conclusive = false;
        }
      }
      if (g.conclusive) {
        // A jam covering the sub-suffix voids completion demands; the
        // timeliness derivation below still runs (threads keep
        // stepping through a jam).
        const bool jammed = plan.jam_covers(g.suffix_from, w.to);
        for (int t = 0; t < n; ++t) {
          if (!w.members[static_cast<std::size_t>(t)]) continue;
          std::vector<std::uint64_t> activity;
          std::vector<std::uint64_t> comps;
          bool issued_here = false;
          for (const rt::RtEvent& ev :
               trace.per_tid[static_cast<std::size_t>(t)]) {
            if (ev.at_ns < g.suffix_from || ev.at_ns > w.to) continue;
            activity.push_back(ev.at_ns);
            if (ev.kind == rt::RtEventKind::kOpStart) issued_here = true;
            if (ev.kind == rt::RtEventKind::kOpComplete) {
              comps.push_back(ev.at_ns);
            }
          }
          if (activity.empty()) continue;
          // Faulted clocks stamp out of order; the gap scan needs
          // sorted streams.
          std::sort(activity.begin(), activity.end());
          std::sort(comps.begin(), comps.end());
          const std::uint64_t bound =
              max_ns_gap_in(activity, g.suffix_from, w.to);
          if (bound > options.timely_bound_ns) continue;
          if (plan.clock_faulted_in(static_cast<std::uint32_t>(t),
                                    g.suffix_from, w.to)) {
            continue;  // a faulted clock earns no timely verdict here
          }
          g.suffix_timely.push_back(t);
          if (jammed || !issued_here) continue;
          const std::uint64_t gap =
              max_ns_gap_in(comps, g.suffix_from, w.to);
          if (gap > options.max_completion_gap_ns) {
            std::ostringstream out;
            out << "epoch " << w.epoch << ": wait-freedom: t" << t
                << " is a timely member of the epoch's sub-suffix (bound "
                << bound << "ns) but its completion gap " << gap
                << "ns exceeds " << options.max_completion_gap_ns << "ns";
            violate(out.str());
          }
        }
      }
      report.epoch_grades.push_back(std::move(g));
    }
  }

  if (report.run_end_ns <
      report.suffix_from_ns + options.min_suffix_ns) {
    std::ostringstream out;
    out << "stable suffix too short: run_end=" << report.run_end_ns
        << "ns < suffix_from=" << report.suffix_from_ns
        << "ns + min_suffix=" << options.min_suffix_ns
        << "ns (inconclusive, lengthen the run)";
    violate(out.str());
    report.ok = report.violations.empty();
    return report;
  }

  // Realized suffix timeliness and issuing/completion streams per tid.
  std::vector<std::vector<std::uint64_t>> completions(
      static_cast<std::size_t>(n));
  std::vector<bool> issuing_in_suffix(static_cast<std::size_t>(n), false);
  std::vector<std::uint32_t> steppers;
  for (int t = 0; t < n; ++t) {
    std::vector<std::uint64_t> activity;
    for (const rt::RtEvent& ev :
         trace.per_tid[static_cast<std::size_t>(t)]) {
      if (ev.at_ns < report.suffix_from_ns ||
          ev.at_ns > report.run_end_ns) {
        continue;
      }
      activity.push_back(ev.at_ns);
      if (ev.kind == rt::RtEventKind::kOpStart) {
        issuing_in_suffix[static_cast<std::size_t>(t)] = true;
      }
      if (ev.kind == rt::RtEventKind::kOpComplete) {
        completions[static_cast<std::size_t>(t)].push_back(ev.at_ns);
      }
    }
    if (activity.empty()) continue;  // dead or silent: exempt from all
    // Faulted clocks stamp out of order; the gap scans need sorted
    // streams. A forward-distorted stamp can also push a pre-death
    // event past suffix_from, so a clock-degraded tid is excused from
    // the zombie check -- its timestamps cannot carry that blame.
    std::sort(activity.begin(), activity.end());
    std::sort(completions[static_cast<std::size_t>(t)].begin(),
              completions[static_cast<std::size_t>(t)].end());
    if (plan.killed_at_end(static_cast<std::uint32_t>(t)) &&
        !is_clock_degraded(static_cast<std::uint32_t>(t))) {
      std::ostringstream out;
      out << "t" << t
          << " is permanently killed by the plan but has "
          << activity.size() << " suffix events (zombie worker)";
      violate(out.str());
    }
    steppers.push_back(static_cast<std::uint32_t>(t));
    const std::uint64_t bound =
        max_ns_gap_in(activity, report.suffix_from_ns, report.run_end_ns);
    report.realized_bound_ns[static_cast<std::size_t>(t)] = bound;
    // A tid outside the view the plan leaves in force is fenced from
    // the lease: graded untimely, so no guarantee is demanded of it
    // and none is counted through it. A clock-degraded tid is graded
    // untimely for the same no-unearned-wait-freedom reason.
    if (bound <= options.timely_bound_ns &&
        !is_clock_degraded(static_cast<std::uint32_t>(t)) &&
        plan.member_at_end(n, static_cast<std::uint32_t>(t))) {
      report.suffix_timely.push_back(static_cast<std::uint32_t>(t));
    }
  }
  for (int t = 0; t < n; ++t) {
    if (issuing_in_suffix[static_cast<std::size_t>(t)]) {
      report.issuing.push_back(static_cast<std::uint32_t>(t));
    }
  }

  const auto is_timely = [&](std::uint32_t t) {
    return std::find(report.suffix_timely.begin(),
                     report.suffix_timely.end(),
                     t) != report.suffix_timely.end();
  };
  const std::size_t timely_issuing = static_cast<std::size_t>(
      std::count_if(report.issuing.begin(), report.issuing.end(),
                    is_timely));

  // A Jam window covering the whole suffix means the registers served
  // nothing there: timeliness can still be derived (threads keep
  // stepping), but no completion guarantee is earnable, so none is
  // demanded and none is awarded.
  report.medium_jammed =
      plan.jam_covers(report.suffix_from_ns, report.run_end_ns);
  if (report.medium_jammed) {
    report.grade = RtGuaranteeGrade::kNone;
    report.ok = report.violations.empty();
    if (metrics != nullptr) {
      metrics->inc("rt.conformance.medium_jammed");
      metrics->inc(report.ok ? "rt.conformance.ok"
                             : "rt.conformance.violated");
      metrics->inc("rt.conformance.violations", report.violations.size());
    }
    return report;
  }

  // Derive the grade the run actually earned (strongest first).
  if (report.issuing.empty()) {
    report.grade = RtGuaranteeGrade::kNone;
  } else if (timely_issuing == report.issuing.size()) {
    report.grade = RtGuaranteeGrade::kWaitFree;
  } else if (timely_issuing >= 1) {
    report.grade = RtGuaranteeGrade::kLockFree;
  } else if (steppers.size() == 1 &&
             issuing_in_suffix[steppers.front()]) {
    report.grade = RtGuaranteeGrade::kObstructionFree;
  } else {
    report.grade = RtGuaranteeGrade::kNone;
  }

  // Graded guarantee 1 -- wait-freedom for every timely issuing thread.
  for (const std::uint32_t t : report.issuing) {
    if (!is_timely(t)) continue;
    const std::uint64_t gap =
        max_ns_gap_in(completions[t], report.suffix_from_ns,
                      report.run_end_ns);
    if (gap > options.max_completion_gap_ns) {
      std::ostringstream out;
      out << "wait-freedom: t" << t << " is timely in the suffix (bound "
          << report.realized_bound_ns[t] << "ns) but its completion gap "
          << gap << "ns exceeds " << options.max_completion_gap_ns << "ns";
      violate(out.str());
    }
  }

  // Graded guarantee 2 -- lock-freedom with >= 1 timely issuing thread.
  if (timely_issuing >= 1) {
    std::vector<std::uint64_t> merged;
    for (const std::uint32_t t : report.issuing) {
      merged.insert(merged.end(), completions[t].begin(),
                    completions[t].end());
    }
    std::sort(merged.begin(), merged.end());
    const std::uint64_t gap = max_ns_gap_in(
        merged, report.suffix_from_ns, report.run_end_ns);
    if (gap > options.max_completion_gap_ns) {
      std::ostringstream out;
      out << "lock-freedom: some issuing thread is timely but the merged "
             "completion gap "
          << gap << "ns exceeds " << options.max_completion_gap_ns << "ns";
      violate(out.str());
    }
  }

  // Graded guarantee 3 -- obstruction-freedom for a solo stepper.
  if (steppers.size() == 1 && issuing_in_suffix[steppers.front()]) {
    if (completions[steppers.front()].empty()) {
      std::ostringstream out;
      out << "obstruction-freedom: t" << steppers.front()
          << " runs solo in the suffix but never completes";
      violate(out.str());
    }
  }

  report.ok = report.violations.empty();

  if (metrics != nullptr) {
    std::vector<std::uint64_t> kills(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> stalls(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> restarts(static_cast<std::size_t>(n), 0);
    for (int t = 0; t < n; ++t) {
      for (const rt::RtEvent& ev :
           trace.per_tid[static_cast<std::size_t>(t)]) {
        if (ev.kind == rt::RtEventKind::kKill) ++kills[t];
        if (ev.kind == rt::RtEventKind::kStall) ++stalls[t];
        if (ev.kind == rt::RtEventKind::kRestart) ++restarts[t];
      }
      const std::string tid = std::to_string(t);
      metrics->inc("rt.conformance.kills.t" + tid, kills[t]);
      metrics->inc("rt.conformance.stalls.t" + tid, stalls[t]);
      metrics->inc("rt.conformance.restarts.t" + tid, restarts[t]);
    }
    metrics->inc("rt.reelect.count", report.reelection_ns.count());
    if (!report.reelection_ns.empty()) {
      metrics->max_of("rt.reelect.max_ns", report.reelection_ns.max());
    }
    for (const std::uint32_t t : report.clock_degraded) {
      metrics->inc("rt.conformance.clock_degraded.t" + std::to_string(t));
    }
    metrics->inc("rt.conformance.clock_faults",
                 plan.clock_faults().size());
    metrics->inc("rt.conformance.epochs", report.epoch_grades.size());
    for (const auto& g : report.epoch_grades) {
      if (g.conclusive) metrics->inc("rt.conformance.epochs_conclusive");
    }
    metrics->inc(std::string("rt.conformance.grade.") +
                 to_string(report.grade));
    metrics->inc(report.ok ? "rt.conformance.ok" : "rt.conformance.violated");
    metrics->inc("rt.conformance.violations", report.violations.size());
  }

  return report;
}

// -- safety x progress grading --------------------------------------------------

// -- batch-epoch front-end ------------------------------------------------------

std::string BatchConformanceReport::summary() const {
  std::ostringstream out;
  out << "batch conformance [" << suffix_from << ", " << run_end << ") "
      << (ok ? "OK" : "VIOLATED") << " commits=" << suffix_commits
      << " judged=" << judged_announces
      << " max_inclusion=" << max_inclusion_observed
      << " mean_batch=" << mean_batch_size << "\n";
  for (const auto& v : violations) out << "  VIOLATION: " << v << "\n";
  return out.str();
}

BatchConformanceReport check_batch_conformance(
    const BatchLog& log, const BatchConformanceOptions& options) {
  BatchConformanceReport report;
  report.suffix_from = options.suffix_from;
  report.run_end = options.run_end;
  report.mean_batch_size = log.mean_batch_size();

  // Commit steps are journalled in slot order == step order.
  std::vector<sim::Step> commit_steps;
  commit_steps.reserve(log.commits.size());
  for (const auto& c : log.commits) {
    commit_steps.push_back(c.step);
    if (c.step >= options.suffix_from && c.step < options.run_end) {
      ++report.suffix_commits;
    }
  }

  const auto is_timely = [&options](sim::Pid p) {
    for (const sim::Pid t : options.timely) {
      if (t == p) return true;
    }
    return false;
  };
  // Batches committed in (announced_at, applied_at] -- the number of
  // batch epochs the announce waited through before inclusion.
  const auto epochs_between = [&commit_steps](sim::Step from, sim::Step to) {
    const auto lo = std::upper_bound(commit_steps.begin(), commit_steps.end(),
                                     from);
    const auto hi = std::upper_bound(commit_steps.begin(), commit_steps.end(),
                                     to);
    return static_cast<std::uint64_t>(hi - lo);
  };

  bool any_pending_demand = false;
  for (const auto& a : log.announces) {
    if (a.announced_at < options.suffix_from ||
        a.announced_at >= options.run_end) {
      continue;
    }
    if (a.voided) continue;  // fate sealed F by the owner's own query
    const bool applied = a.applied_at != BatchAnnounceEvent::kNever;
    const bool excused_young =
        !applied &&
        options.run_end - a.announced_at <= options.end_grace;

    // Lock-freedom demand: SOME batch must commit soon after any
    // pending announce, timely owner or not (the merged stream serves
    // everyone).
    if (!excused_young) {
      any_pending_demand = true;
      const auto next_commit = std::upper_bound(
          commit_steps.begin(), commit_steps.end(), a.announced_at);
      const sim::Step served_by =
          next_commit != commit_steps.end() ? *next_commit : options.run_end;
      if (served_by - a.announced_at > options.max_commit_gap) {
        report.violations.push_back(
            "lock-freedom: no batch committed within " +
            std::to_string(options.max_commit_gap) + " steps of p" +
            std::to_string(a.owner) + "'s announce at step " +
            std::to_string(a.announced_at));
      }
    }

    if (!is_timely(a.owner)) continue;
    if (excused_young) continue;
    ++report.judged_announces;
    if (!applied) {
      report.violations.push_back(
          "wait-freedom: timely p" + std::to_string(a.owner) +
          "'s announce (uid " + std::to_string(a.uid) + ", step " +
          std::to_string(a.announced_at) + ") was never included in a batch");
      continue;
    }
    const std::uint64_t epochs = epochs_between(a.announced_at, a.applied_at);
    report.max_inclusion_observed =
        std::max(report.max_inclusion_observed, epochs);
    if (epochs > options.max_inclusion_batches) {
      report.violations.push_back(
          "wait-freedom: timely p" + std::to_string(a.owner) +
          "'s announce waited " + std::to_string(epochs) +
          " batch epochs (bound " +
          std::to_string(options.max_inclusion_batches) + ")");
    }
    if (a.applied_at - a.announced_at > options.max_inclusion_steps) {
      report.violations.push_back(
          "wait-freedom: timely p" + std::to_string(a.owner) +
          "'s announce waited " +
          std::to_string(a.applied_at - a.announced_at) + " steps (bound " +
          std::to_string(options.max_inclusion_steps) + ")");
    }
  }

  // Obstruction-freedom: demand in the window with live announcers but
  // not a single committed batch is a stall even without timely pids.
  if (any_pending_demand && report.suffix_commits == 0) {
    report.violations.push_back(
        "obstruction-freedom: announces pending in the suffix but no batch "
        "committed at all");
  }

  report.ok = report.violations.empty();
  return report;
}

SafetySummary safety_from_oracle(const verify::OracleResult& oracle) {
  SafetySummary safety;
  safety.checked = true;
  safety.ok = oracle.linearizable();
  safety.verdict = verify::to_string(oracle.verdict);
  safety.witness = oracle.witness;
  return safety;
}

GradedRunReport grade_run(ConformanceReport progress, SafetySummary safety,
                          util::Counters* metrics) {
  GradedRunReport report;
  report.progress = std::move(progress);
  report.safety = std::move(safety);
  if (metrics != nullptr) {
    metrics->inc(report.ok() ? "graded.ok" : "graded.violated");
    if (report.safety.checked && !report.safety.ok) {
      metrics->inc("graded.safety_violation");
    }
    if (!report.progress.ok) metrics->inc("graded.progress_violation");
  }
  return report;
}

std::string GradedRunReport::summary() const {
  std::string out = "graded run: ";
  out += ok() ? "OK" : "VIOLATED";
  out += "\n  safety: ";
  if (!safety.checked) {
    out += "(not checked)";
  } else {
    out += safety.verdict;
    if (!safety.witness.empty()) out += " -- " + safety.witness;
  }
  out += "\n  progress: ";
  out += progress.ok ? "OK" : "VIOLATED";
  out += "\n";
  out += progress.summary();
  return out;
}

// -- SLO x progress grading -----------------------------------------------------

namespace {

ServiceRunReport join_service_verdicts(bool progress_ok,
                                       std::string progress_summary,
                                       SloSummary slo,
                                       util::Counters* metrics) {
  ServiceRunReport report;
  report.progress_ok = progress_ok;
  report.progress_summary = std::move(progress_summary);
  report.slo = std::move(slo);
  if (metrics != nullptr) {
    metrics->inc(report.ok() ? "service.ok" : "service.violated");
    if (report.slo.checked && !report.slo.ok) {
      metrics->inc("service.slo_violation");
    }
    if (!report.progress_ok) metrics->inc("service.progress_violation");
  }
  return report;
}

}  // namespace

ServiceRunReport grade_service_run(const ConformanceReport& progress,
                                   SloSummary slo, util::Counters* metrics) {
  return join_service_verdicts(progress.ok, progress.summary(),
                               std::move(slo), metrics);
}

ServiceRunReport grade_service_run(const RtConformanceReport& progress,
                                   SloSummary slo, util::Counters* metrics) {
  return join_service_verdicts(progress.ok, progress.summary(),
                               std::move(slo), metrics);
}

std::string ServiceRunReport::summary() const {
  std::ostringstream out;
  out << "service run: " << (ok() ? "OK" : "VIOLATED");
  if (!ok()) {
    // Name the failing axis outright: that is the whole point of the
    // joint verdict.
    out << " (";
    if (!progress_ok && slo.checked && !slo.ok) {
      out << "progress AND slo failed";
    } else if (!progress_ok) {
      out << "progress failed, slo "
          << (slo.checked ? "passed" : "not checked");
    } else {
      out << "slo failed, progress passed";
    }
    out << ")";
  }
  out << "\n  slo: ";
  if (!slo.checked) {
    out << "(not checked)";
  } else {
    out << slo.verdict;
    for (const auto& v : slo.violations) out << "\n    SLO: " << v;
  }
  out << "\n  progress: " << (progress_ok ? "OK" : "VIOLATED") << "\n";
  out << progress_summary;
  return out.str();
}

}  // namespace tbwf::core
