// Progress-condition checkers over finite runs.
//
// Definition 3 operationalized: a process is "wait-free in this run" if,
// while it keeps issuing operations, its completions never stop -- we
// check that after a warm-up prefix, the gap between consecutive
// completions (and from the last completion to the end of the run) never
// exceeds a given bound. TBWF then requires this of every timely
// process. The same machinery classifies runs as exhibiting
// obstruction-free / lock-free / wait-free amounts of progress, which is
// what the graceful-degradation experiments report.
#pragma once

#include <string>
#include <vector>

#include "core/tbwf_object.hpp"
#include "sim/types.hpp"

namespace tbwf::core {

struct ProcessProgress {
  sim::Pid pid = sim::kNoPid;
  std::uint64_t completed = 0;
  sim::Step max_completion_gap = 0;  ///< within [warmup, run_end]
  bool progressing = false;          ///< gap bound respected
};

struct ProgressReport {
  std::vector<ProcessProgress> per_process;
  /// pids that kept completing operations (bounded gaps).
  std::vector<sim::Pid> progressing;

  const ProcessProgress& of(sim::Pid p) const { return per_process[p]; }
  std::string summary() const;
};

/// Analyze completion streams. `warmup` excludes the stabilization
/// prefix; `max_gap` is the bound on steps between completions for a
/// process to count as progressing. Only processes in `issuing` (those
/// that kept issuing operations to the end) are classified; others get
/// progressing = false and max gap 0.
ProgressReport analyze_progress(const OpLog& log, sim::Step run_end,
                                sim::Step warmup, sim::Step max_gap,
                                const std::vector<sim::Pid>& issuing);

struct TbwfVerdict {
  bool holds = false;
  std::vector<sim::Pid> violators;  ///< timely but not progressing
  std::string summary() const;
};

/// Definition 3: every timely process (that keeps issuing operations)
/// must be progressing.
TbwfVerdict check_tbwf(const ProgressReport& report,
                       const std::vector<sim::Pid>& timely);

}  // namespace tbwf::core
