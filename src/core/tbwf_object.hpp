// The TBWF transformation -- Section 7, Figure 7 (Theorem 14).
//
// Given Omega-Delta and a wait-free query-abortable object O_QA, the
// transformation yields a timeliness-based wait-free implementation of
// the underlying type T:
//
//   invoke(op):
//     wait until LEADER != self        (canonical use of Omega-Delta;
//                                       Definition 6 -- without this, a
//                                       timely process could monopolize
//                                       the object forever)
//     CANDIDATE := true
//     repeat:
//       if LEADER = self:
//         run op / query on O_QA per the Figure 8 automaton:
//           normal response v  -> CANDIDATE := false; return v
//           bottom             -> next operation is `query`
//           F                  -> retry op
//
// Timely permanent candidates win the leadership infinitely often and,
// while leading, run effectively solo on O_QA (non-leaders back off), so
// their operations succeed; the canonical wait rotates leadership among
// all timely processes, making each of them wait-free.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "omega/omega.hpp"
#include "qa/qa_universal.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "util/metrics.hpp"

namespace tbwf::core {

/// Per-process operation bookkeeping used by the progress checkers and
/// benches: completion step of every finished operation.
struct OpLog {
  explicit OpLog(int n) : completions(n), started(n, 0) {}

  std::vector<std::vector<sim::Step>> completions;
  std::vector<std::uint64_t> started;

  std::uint64_t completed(sim::Pid p) const {
    return completions[p].size();
  }
};

template <qa::Sequential S, class Base = qa::AtomicBase>
class TbwfObject {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;

  /// Maps a pid to that process's Omega-Delta interface variables --
  /// works with either implementation (OmegaRegisters / OmegaAbortable).
  using OmegaIoProvider = std::function<omega::OmegaIO&(sim::Pid)>;

  TbwfObject(sim::World& world, State initial, OmegaIoProvider omega_io,
             registers::AbortPolicy* qa_policy = nullptr)
      : qa_(world, std::move(initial), qa_policy),
        omega_io_(std::move(omega_io)),
        log_(world.n()) {}

  /// Disable the canonical wait (Figure 7 line 2). FOR EXPERIMENTS ONLY:
  /// demonstrates the monopolization failure the paper warns about.
  void set_canonical(bool canonical) { canonical_ = canonical; }

  /// Execute `op`; returns only when the operation took effect. Under
  /// TBWF this terminates in a bounded number of the caller's steps
  /// whenever the caller is timely.
  sim::Co<Result> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    omega::OmegaIO& io = omega_io_(p);
    ++log_.started[p];

    if (canonical_) {
      while (io.leader == p) co_await env.yield();            // line 2
    }
    io.candidate = true;                                      // line 3
    bool next_is_query = false;                               // op' = op
    for (;;) {                                                // line 5
      if (io.leader == p) {                                   // line 6
        qa::QaResponse<Result> res =
            next_is_query ? co_await qa_.query(env)
                          : co_await qa_.invoke(env, op);     // line 7
        if (res.ok()) {                                       // line 8
          io.candidate = false;
          log_.completions[p].push_back(env.now());
          co_return res.value;
        }
        if (res.bottom()) next_is_query = true;               // line 9
        if (res.not_applied()) next_is_query = false;         // line 10
      } else {
        co_await env.yield();
      }
    }
  }

  qa::QaUniversal<S, Base>& qa() { return qa_; }
  const OpLog& log() const { return log_; }

 private:
  qa::QaUniversal<S, Base> qa_;
  OmegaIoProvider omega_io_;
  OpLog log_;
  bool canonical_ = true;
};

}  // namespace tbwf::core
