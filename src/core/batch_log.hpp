// Batch-epoch event log for the throughput engine.
//
// The batched universal construction (src/qa/qa_batched.hpp) commits an
// ordered BATCH of announced operations per decided slot. The paper's
// graded guarantees survive the transformation, but they have to be
// restated per *batch epoch*: a timely announcer is no longer promised
// "my own attempt decides within B of my steps" -- it is promised "my
// announced op is INCLUDED in a committed batch within a bounded number
// of batch epochs of its announce". This header holds the raw events
// that restatement is judged over; the checker itself lives in
// core/conformance (check_batch_conformance).
//
// The log is deliberately backend-agnostic plain data: the sim engine
// stamps global steps, an rt front-end could stamp nanoseconds into the
// same (widened) fields.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace tbwf::core {

/// One committed batch: decided slot `slot` applied `batch_size` fresh
/// announced ops in a single promise/accept/decide round.
struct BatchCommitEvent {
  std::uint64_t slot = 0;
  sim::Pid decider = sim::kNoPid;
  sim::Step step = 0;           ///< global step at the decide
  std::uint32_t batch_size = 0; ///< fresh ops this slot applied
};

/// Lifecycle of one announced op, from publication in the announce
/// array to its inclusion in a decided batch (or never).
struct BatchAnnounceEvent {
  static constexpr sim::Step kNever = ~sim::Step{0};

  sim::Pid owner = sim::kNoPid;
  std::uint64_t uid = 0;
  sim::Step announced_at = 0;
  sim::Step applied_at = kNever;   ///< kNever = not (yet) included
  std::uint64_t applied_slot = 0;  ///< valid iff applied_at != kNever
  bool voided = false;             ///< consumed by a query tombstone (F)
};

struct BatchLog {
  std::vector<BatchCommitEvent> commits;
  std::vector<BatchAnnounceEvent> announces;

  /// Mean fresh ops per committed batch (0 when no commits).
  double mean_batch_size() const {
    if (commits.empty()) return 0.0;
    std::uint64_t ops = 0;
    for (const auto& c : commits) ops += c.batch_size;
    return static_cast<double>(ops) / static_cast<double>(commits.size());
  }
};

}  // namespace tbwf::core
