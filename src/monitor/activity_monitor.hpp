// Dynamic activity monitors A(p,q) -- Section 5.1, Figure 2.
//
// For an ordered pair of processes (p, q), A(p, q) helps p determine
// whether q is currently active (for p) and whether q is p-timely. Both
// sides are fully dynamic: p can turn monitoring on/off at any time via
// MONITORING[q]; q can declare itself active/inactive for p at any time
// via ACTIVE-FOR[p].
//
// Outputs at p: STATUS[q] in {active, inactive, ?} and FAULTCNTR[q], the
// number of times A(p,q) has suspected q of not being p-timely. The
// guarantees are Definition 9's properties 1-6; tests/monitor_test.cpp
// checks each of them over the full 9-case input matrix.
//
// Implementation (paper's key ideas): while active for p, q writes an
// increasing heartbeat counter into an atomic register; to stop
// willingly, q writes the sentinel -1 (distinguishing "stopped" from
// "crashed", which is what keeps FAULTCNTR bounded in cases 5b/5c).
// p polls the register with an adaptive timeout that grows by one on
// every suspicion; FAULTCNTR increments only when the register is not
// the sentinel and has increased since the previous increment.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/task.hpp"
#include "sim/world.hpp"

namespace tbwf::monitor {

/// STATUS[q] values; Unknown renders the paper's "?".
enum class Status : std::uint8_t { Unknown, Active, Inactive };

inline const char* to_string(Status s) {
  switch (s) {
    case Status::Unknown:  return "?";
    case Status::Active:   return "active";
    case Status::Inactive: return "inactive";
  }
  return "<bad>";
}

/// A(p,q)'s variables at the monitoring process p (about target q).
/// `monitoring` is the input; `status` / `fault_cntr` are the outputs.
/// Plain fields: sub-tasks of one process interleave single-threadedly.
struct MonitorIO {
  bool monitoring = false;
  Status status = Status::Unknown;
  std::uint64_t fault_cntr = 0;
};

/// A(p,q)'s input at the monitored process q: ACTIVE-FOR[p].
struct ActiveForFlag {
  bool active_for = false;
};

/// Heartbeat register value type. -1 is the "stopped willingly" sentinel.
using HbValue = std::int64_t;

/// Figure 2 (top): code for the monitored process q. `hb_reg` is
/// HbRegister[q,p], written by q and read by p.
sim::Task monitored_side(sim::SimEnv& env, sim::AtomicReg<HbValue> hb_reg,
                         const ActiveForFlag& input);

/// Figure 2 (bottom): code for the monitoring process p.
sim::Task monitoring_side(sim::SimEnv& env, sim::AtomicReg<HbValue> hb_reg,
                          MonitorIO& io);

/// Builds and installs the full matrix of activity monitors for a world:
/// one A(p,q) per ordered pair p != q, i.e. per process 2(n-1) sub-tasks
/// (monitoring each other process + being monitored by each other
/// process). Owns all register handles and local-variable structs in
/// stable storage; must outlive the world run.
class MonitorMatrix {
 public:
  explicit MonitorMatrix(sim::World& world);

  /// Spawn all monitor sub-tasks. Call once, before running the world.
  void install_all();

  /// Spawn only process p's monitor sub-tasks (both directions).
  void install(sim::Pid p);

  /// p's view of q (inputs + outputs of A(p,q) at p). p != q.
  MonitorIO& io(sim::Pid p, sim::Pid q);
  const MonitorIO& io(sim::Pid p, sim::Pid q) const;

  /// q's ACTIVE-FOR[p] flag (input of A(p,q) at q). q != p.
  ActiveForFlag& active_for(sim::Pid q, sim::Pid p);

  /// HbRegister[q,p]: written by q, read by p.
  sim::AtomicReg<HbValue> hb_register(sim::Pid q, sim::Pid p) const;

  int n() const { return n_; }

 private:
  std::size_t index(sim::Pid a, sim::Pid b) const;

  sim::World& world_;
  int n_;
  std::vector<sim::AtomicReg<HbValue>> hb_;  // [q*n + p]: written by q
  std::vector<MonitorIO> io_;                // [p*n + q]: at p, about q
  std::vector<ActiveForFlag> active_for_;    // [q*n + p]: at q, towards p
};

}  // namespace tbwf::monitor
