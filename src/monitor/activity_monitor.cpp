#include "monitor/activity_monitor.hpp"

#include <string>

#include "util/assert.hpp"

namespace tbwf::monitor {

// Figure 2, lines 1-6 (monitored process q).
sim::Task monitored_side(sim::SimEnv& env, sim::AtomicReg<HbValue> hb_reg,
                         const ActiveForFlag& input) {
  HbValue hb_counter = 0;
  for (;;) {
    co_await env.write(hb_reg, HbValue{-1});                    // line 2
    while (!input.active_for) co_await env.yield();             // line 3
    while (input.active_for) {                                  // line 4
      ++hb_counter;                                             // line 5
      co_await env.write(hb_reg, hb_counter);                   // line 6
    }
  }
}

// Figure 2, lines 7-26 (monitoring process p).
sim::Task monitoring_side(sim::SimEnv& env, sim::AtomicReg<HbValue> hb_reg,
                          MonitorIO& io) {
  std::int64_t hb_timeout = 1;
  std::int64_t hb_timer = 1;
  HbValue hb_counter = 0;
  HbValue prev_hb_counter = 0;
  bool allow_increment = true;

  for (;;) {                                                    // line 7
    io.status = Status::Unknown;                                // line 8
    while (!io.monitoring) co_await env.yield();                // line 9
    hb_timer = hb_timeout;                                      // line 10

    while (io.monitoring) {                                     // line 11
      if (hb_timer >= 1) --hb_timer;                            // line 12
      if (hb_timer == 0) {                                      // line 13
        hb_timer = hb_timeout;                                  // line 14
        prev_hb_counter = hb_counter;                           // line 15
        hb_counter = co_await env.read(hb_reg);                 // line 16
        if (hb_counter < 0) {                                   // line 17
          io.status = Status::Inactive;
        }
        if (hb_counter >= 0 && hb_counter > prev_hb_counter) {  // line 18
          io.status = Status::Active;                           // line 19
          allow_increment = true;                               // line 20
        }
        if (hb_counter >= 0 && hb_counter <= prev_hb_counter) { // line 21
          io.status = Status::Inactive;                         // line 22
          if (allow_increment) {                                // line 23
            ++io.fault_cntr;                                    // line 24
            ++hb_timeout;                                       // line 25
            allow_increment = false;                            // line 26
          }
        }
      } else {
        // Iterations that only tick the timer still cost one step of p,
        // so the adaptive timeout is measured in p's own steps --
        // timeliness in this model is relative to process speed.
        co_await env.yield();
      }
    }
  }
}

MonitorMatrix::MonitorMatrix(sim::World& world)
    : world_(world), n_(world.n()) {
  hb_.resize(static_cast<std::size_t>(n_) * n_);
  io_.resize(static_cast<std::size_t>(n_) * n_);
  active_for_.resize(static_cast<std::size_t>(n_) * n_);
  for (sim::Pid q = 0; q < n_; ++q) {
    for (sim::Pid p = 0; p < n_; ++p) {
      if (p == q) continue;
      hb_[index(q, p)] = world_.make_atomic<HbValue>(
          "Hb[" + std::to_string(q) + "," + std::to_string(p) + "]",
          HbValue{-1});
    }
  }
}

std::size_t MonitorMatrix::index(sim::Pid a, sim::Pid b) const {
  TBWF_ASSERT(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
              "bad monitor pair");
  return static_cast<std::size_t>(a) * n_ + b;
}

void MonitorMatrix::install(sim::Pid p) {
  for (sim::Pid q = 0; q < n_; ++q) {
    if (q == p) continue;
    // p monitors q: the monitoring side of A(p,q), reading HbRegister[q,p].
    auto reg_in = hb_[index(q, p)];
    MonitorIO* io = &io_[index(p, q)];
    world_.spawn(p, "monitor(" + std::to_string(q) + ")",
                 [reg_in, io](sim::SimEnv& env) {
                   return monitoring_side(env, reg_in, *io);
                 });
    // p is monitored by q: the monitored side of A(q,p), writing
    // HbRegister[p,q].
    auto reg_out = hb_[index(p, q)];
    const ActiveForFlag* flag = &active_for_[index(p, q)];
    world_.spawn(p, "heartbeat(" + std::to_string(q) + ")",
                 [reg_out, flag](sim::SimEnv& env) {
                   return monitored_side(env, reg_out, *flag);
                 });
  }
}

void MonitorMatrix::install_all() {
  for (sim::Pid p = 0; p < n_; ++p) install(p);
}

MonitorIO& MonitorMatrix::io(sim::Pid p, sim::Pid q) {
  return io_[index(p, q)];
}

const MonitorIO& MonitorMatrix::io(sim::Pid p, sim::Pid q) const {
  return io_[index(p, q)];
}

ActiveForFlag& MonitorMatrix::active_for(sim::Pid q, sim::Pid p) {
  return active_for_[index(q, p)];
}

sim::AtomicReg<HbValue> MonitorMatrix::hb_register(sim::Pid q,
                                                   sim::Pid p) const {
  return hb_[index(q, p)];
}

}  // namespace tbwf::monitor
