#include "registers/reg_faults.hpp"

#include <algorithm>

#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace tbwf::registers {

const char* to_string(RegFaultKind kind) {
  switch (kind) {
    case RegFaultKind::Jam:
      return "jam";
    case RegFaultKind::Drop:
      return "drop";
    case RegFaultKind::Stale:
      return "stale";
    case RegFaultKind::Torn:
      return "torn";
    case RegFaultKind::Flake:
      return "flake";
  }
  return "?";
}

RegisterFaultInjector& RegisterFaultInjector::add_fault(std::uint32_t reg,
                                                        RegFaultKind kind,
                                                        sim::Step from,
                                                        sim::Step to,
                                                        double rate) {
  TBWF_ASSERT(from <= to, "fault window must be ordered");
  faults_.push_back(RegFaultProfile{reg, kind, from, to, rate});
  return *this;
}

int RegisterFaultInjector::arm_link(const sim::World& world, sim::Pid writer,
                                    sim::Pid reader, const std::string& prefix,
                                    RegFaultKind kind, sim::Step from,
                                    sim::Step to, double rate) {
  int armed = 0;
  for (std::uint32_t idx = 0; idx < world.register_count(); ++idx) {
    const auto& cell = world.cell_info(idx);
    if (cell.kind != sim::RegKind::Abortable) continue;
    if (cell.writer != writer || cell.reader != reader) continue;
    if (cell.policy != this) continue;
    if (!prefix.empty() && cell.name.rfind(prefix, 0) != 0) continue;
    add_fault(idx, kind, from, to, rate);
    ++armed;
  }
  return armed;
}

const RegFaultProfile* RegisterFaultInjector::fire(std::uint32_t reg,
                                                   sim::Step t,
                                                   bool is_write) {
  for (const auto& f : faults_) {
    if (f.reg != reg) continue;
    if (t < f.from || (f.to != kFaultForever && t >= f.to)) continue;
    switch (f.kind) {
      case RegFaultKind::Jam:
        return &f;  // a jam swallows everything, no coin flip
      case RegFaultKind::Drop:
      case RegFaultKind::Torn:
        if (!is_write) continue;
        break;
      case RegFaultKind::Stale:
        if (is_write) continue;
        break;
      case RegFaultKind::Flake:
        break;
    }
    if (rng_.chance(f.rate)) return &f;
  }
  return nullptr;
}

ReadOutcome RegisterFaultInjector::read_outcome(const OpContext& ctx,
                                                bool contended) {
  if (const auto* f = fire(ctx.reg, ctx.responded_at, /*is_write=*/false)) {
    ++injected_[static_cast<int>(f->kind)];
    switch (f->kind) {
      case RegFaultKind::Stale:
        return ReadOutcome::Stale;
      case RegFaultKind::Jam:
      case RegFaultKind::Flake:
        return ReadOutcome::Abort;
      default:
        break;
    }
  }
  if (calm_ != nullptr) {
    return contended ? calm_->on_contended_read(ctx)
                     : calm_->on_solo_read(ctx);
  }
  return ReadOutcome::Success;
}

WriteOutcome RegisterFaultInjector::write_outcome(const OpContext& ctx,
                                                  bool contended) {
  if (const auto* f = fire(ctx.reg, ctx.responded_at, /*is_write=*/true)) {
    ++injected_[static_cast<int>(f->kind)];
    switch (f->kind) {
      case RegFaultKind::Jam:
        return WriteOutcome::AbortNoEffect;
      case RegFaultKind::Drop:
        return WriteOutcome::SilentDrop;
      case RegFaultKind::Torn:
        return WriteOutcome::Torn;
      case RegFaultKind::Flake:
        // Transient burst: an honest abort whose effect is a coin flip,
        // like a storm's.
        return rng_.chance(0.5) ? WriteOutcome::AbortWithEffect
                                : WriteOutcome::AbortNoEffect;
      default:
        break;
    }
  }
  if (calm_ != nullptr) {
    return contended ? calm_->on_contended_write(ctx)
                     : calm_->on_solo_write(ctx);
  }
  return WriteOutcome::Success;
}

ReadOutcome RegisterFaultInjector::on_contended_read(const OpContext& ctx) {
  return read_outcome(ctx, /*contended=*/true);
}

WriteOutcome RegisterFaultInjector::on_contended_write(const OpContext& ctx) {
  return write_outcome(ctx, /*contended=*/true);
}

ReadOutcome RegisterFaultInjector::on_solo_read(const OpContext& ctx) {
  return read_outcome(ctx, /*contended=*/false);
}

WriteOutcome RegisterFaultInjector::on_solo_write(const OpContext& ctx) {
  return write_outcome(ctx, /*contended=*/false);
}

bool RegisterFaultInjector::crashed_write_takes_effect(const OpContext& ctx) {
  // A write swallowed by an open Jam or Drop window dies with the
  // process; otherwise the calm policy (or the conservative default)
  // decides.
  for (const auto& f : faults_) {
    if (f.reg != ctx.reg) continue;
    if (ctx.responded_at < f.from ||
        (f.to != kFaultForever && ctx.responded_at >= f.to)) {
      continue;
    }
    if (f.kind == RegFaultKind::Jam || f.kind == RegFaultKind::Drop) {
      return false;
    }
  }
  return calm_ != nullptr ? calm_->crashed_write_takes_effect(ctx) : false;
}

std::uint64_t RegisterFaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto count : injected_) total += count;
  return total;
}

bool RegisterFaultInjector::jam_covers(std::uint32_t reg, sim::Step from,
                                       sim::Step to) const {
  return std::any_of(faults_.begin(), faults_.end(),
                     [&](const RegFaultProfile& f) {
                       return f.reg == reg && f.kind == RegFaultKind::Jam &&
                              f.from <= from &&
                              (f.to == kFaultForever || f.to >= to);
                     });
}

void RegisterFaultInjector::export_metrics(util::Counters& metrics) const {
  for (int k = 0; k < kRegFaultKinds; ++k) {
    metrics.inc(std::string("regfault.injected.") +
                    to_string(static_cast<RegFaultKind>(k)),
                injected_[k]);
  }
}

}  // namespace tbwf::registers
