#include "registers/abort_policy.hpp"

#include <algorithm>

namespace tbwf::registers {

bool AbortPolicy::crashed_write_takes_effect(const OpContext&) {
  return false;
}

ReadOutcome AbortPolicy::on_solo_read(const OpContext&) {
  return ReadOutcome::Success;
}

WriteOutcome AbortPolicy::on_solo_write(const OpContext&) {
  return WriteOutcome::Success;
}

WriteOutcome AlwaysAbortPolicy::on_contended_write(const OpContext&) {
  switch (effect_) {
    case Effect::Never:
      return WriteOutcome::AbortNoEffect;
    case Effect::Always:
      return WriteOutcome::AbortWithEffect;
    case Effect::Alternate:
      flip_ = !flip_;
      return flip_ ? WriteOutcome::AbortWithEffect
                   : WriteOutcome::AbortNoEffect;
  }
  return WriteOutcome::AbortNoEffect;
}

ReadOutcome ProbabilisticAbortPolicy::on_contended_read(const OpContext&) {
  return rng_.chance(p_abort_read_) ? ReadOutcome::Abort
                                    : ReadOutcome::Success;
}

WriteOutcome ProbabilisticAbortPolicy::on_contended_write(const OpContext&) {
  if (!rng_.chance(p_abort_write_)) return WriteOutcome::Success;
  return rng_.chance(p_effect_) ? WriteOutcome::AbortWithEffect
                                : WriteOutcome::AbortNoEffect;
}

bool ProbabilisticAbortPolicy::crashed_write_takes_effect(const OpContext&) {
  return rng_.chance(p_effect_);
}

const PhasedAbortPolicy::Phase* PhasedAbortPolicy::phase_at(
    sim::Step t) const {
  for (const auto& phase : phases_) {
    if (t >= phase.from && t < phase.to) return &phase;
  }
  return nullptr;
}

ReadOutcome PhasedAbortPolicy::on_contended_read(const OpContext& ctx) {
  if (const auto* phase = phase_at(ctx.responded_at)) {
    if (rng_.chance(phase->rate)) {
      ++storm_aborts_;
      return ReadOutcome::Abort;
    }
  }
  return calm_ ? calm_->on_contended_read(ctx) : ReadOutcome::Success;
}

WriteOutcome PhasedAbortPolicy::on_contended_write(const OpContext& ctx) {
  if (const auto* phase = phase_at(ctx.responded_at)) {
    if (rng_.chance(phase->rate)) {
      ++storm_aborts_;
      return rng_.chance(phase->p_effect) ? WriteOutcome::AbortWithEffect
                                          : WriteOutcome::AbortNoEffect;
    }
  }
  return calm_ ? calm_->on_contended_write(ctx) : WriteOutcome::Success;
}

bool PhasedAbortPolicy::crashed_write_takes_effect(const OpContext& ctx) {
  if (const auto* phase = phase_at(ctx.responded_at)) {
    return rng_.chance(phase->p_effect);
  }
  return calm_ ? calm_->crashed_write_takes_effect(ctx) : false;
}

std::uint64_t BoundedBackoff::delay(int attempt) const {
  if (attempt < options_.free_retries) return 0;
  const int exp = attempt - options_.free_retries;
  // base << exp, saturating at cap without shifting past 63 bits.
  if (exp >= 63) return options_.cap;
  const std::uint64_t raw = options_.base << exp;
  const bool overflowed = (raw >> exp) != options_.base;
  return std::min(overflowed ? options_.cap : raw, options_.cap);
}

std::uint64_t BoundedBackoff::jittered_delay(int attempt,
                                             util::Rng& rng) const {
  const std::uint64_t d = delay(attempt);
  if (d <= 1) return d;
  return d / 2 + rng.below(d - d / 2 + 1);
}

bool TargetedAbortPolicy::is_victim(sim::Pid p) const {
  return std::find(victims_.begin(), victims_.end(), p) != victims_.end();
}

ReadOutcome TargetedAbortPolicy::on_contended_read(const OpContext& ctx) {
  return is_victim(ctx.pid) ? ReadOutcome::Abort : ReadOutcome::Success;
}

WriteOutcome TargetedAbortPolicy::on_contended_write(const OpContext& ctx) {
  return is_victim(ctx.pid) ? WriteOutcome::AbortNoEffect
                            : WriteOutcome::Success;
}

}  // namespace tbwf::registers
