#include "registers/abort_policy.hpp"

#include <algorithm>

namespace tbwf::registers {

bool AbortPolicy::crashed_write_takes_effect(const OpContext&) {
  return false;
}

WriteOutcome AlwaysAbortPolicy::on_contended_write(const OpContext&) {
  switch (effect_) {
    case Effect::Never:
      return WriteOutcome::AbortNoEffect;
    case Effect::Always:
      return WriteOutcome::AbortWithEffect;
    case Effect::Alternate:
      flip_ = !flip_;
      return flip_ ? WriteOutcome::AbortWithEffect
                   : WriteOutcome::AbortNoEffect;
  }
  return WriteOutcome::AbortNoEffect;
}

ReadOutcome ProbabilisticAbortPolicy::on_contended_read(const OpContext&) {
  return rng_.chance(p_abort_read_) ? ReadOutcome::Abort
                                    : ReadOutcome::Success;
}

WriteOutcome ProbabilisticAbortPolicy::on_contended_write(const OpContext&) {
  if (!rng_.chance(p_abort_write_)) return WriteOutcome::Success;
  return rng_.chance(p_effect_) ? WriteOutcome::AbortWithEffect
                                : WriteOutcome::AbortNoEffect;
}

bool ProbabilisticAbortPolicy::crashed_write_takes_effect(const OpContext&) {
  return rng_.chance(p_effect_);
}

bool TargetedAbortPolicy::is_victim(sim::Pid p) const {
  return std::find(victims_.begin(), victims_.end(), p) != victims_.end();
}

ReadOutcome TargetedAbortPolicy::on_contended_read(const OpContext& ctx) {
  return is_victim(ctx.pid) ? ReadOutcome::Abort : ReadOutcome::Success;
}

WriteOutcome TargetedAbortPolicy::on_contended_write(const OpContext& ctx) {
  return is_victim(ctx.pid) ? WriteOutcome::AbortNoEffect
                            : WriteOutcome::Success;
}

}  // namespace tbwf::registers
