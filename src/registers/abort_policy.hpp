// Abort policies: the adversary inside an abortable register.
//
// The paper (Section 1.2, quoting [2]) specifies an abortable register as
// behaving like an atomic register except that operations that are
// *concurrent* with other operations may abort, returning bottom; an
// aborted write may or may not have taken effect. Operations that run
// solo never abort -- this is the property all of Section 6's adaptive
// back-off mechanisms rely on, so the simulator enforces it structurally:
// a policy is consulted only for operations that overlapped another
// operation on the same register.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace tbwf::registers {

/// Everything a policy may observe about one contended operation.
struct OpContext {
  sim::Pid pid = sim::kNoPid;
  bool is_write = false;
  sim::Step invoked_at = 0;
  sim::Step responded_at = 0;
  /// Index of the register the operation targets (world arena index);
  /// 0xFFFFFFFF when not supplied (e.g. unit tests driving a policy
  /// directly). Fault injectors key per-register profiles on this.
  std::uint32_t reg = 0xFFFFFFFFu;
  /// Processes whose operations on the same register overlapped this one.
  std::vector<sim::Pid> overlap_pids;
  /// True iff at least one overlapping operation was a write (safe
  /// registers only corrupt reads that overlap a write).
  bool any_overlap_write = false;
};

enum class WriteOutcome : std::uint8_t {
  Success,          ///< returns ok, value installed
  AbortNoEffect,    ///< returns bottom, register unchanged
  AbortWithEffect,  ///< returns bottom, but the value IS installed
  /// Degraded-medium outcomes (RegisterFaultInjector only): the caller
  /// sees success, but the medium lied. A spec-conforming abortable
  /// register never produces these; hardened channels must detect them.
  SilentDrop,  ///< returns ok, register unchanged (the write vanished)
  Torn,        ///< returns ok, only part of the value landed
};

enum class ReadOutcome : std::uint8_t {
  Success,
  Abort,
  /// Degraded-medium outcome (RegisterFaultInjector only): the read
  /// returns the register's *previous* value instead of the current one.
  Stale,
};

class AbortPolicy {
 public:
  virtual ~AbortPolicy() = default;

  /// Consulted only when the read overlapped at least one other op.
  virtual ReadOutcome on_contended_read(const OpContext& ctx) = 0;

  /// Consulted only when the write overlapped at least one other op.
  virtual WriteOutcome on_contended_write(const OpContext& ctx) = 0;

  /// Consulted for operations that ran solo. The abortable-register spec
  /// says solo operations never abort, so the defaults return Success and
  /// every spec-conforming policy inherits them; only the register fault
  /// layer (a deliberately *broken* medium, e.g. a jammed register)
  /// overrides these.
  virtual ReadOutcome on_solo_read(const OpContext& ctx);
  virtual WriteOutcome on_solo_write(const OpContext& ctx);

  /// The owning process crashed between the write's invocation and its
  /// response: does the value reach the register?
  virtual bool crashed_write_takes_effect(const OpContext& ctx);
};

/// Degenerates the abortable register into an atomic register. Useful as
/// a control in ablation benches.
class NeverAbortPolicy final : public AbortPolicy {
 public:
  ReadOutcome on_contended_read(const OpContext&) override {
    return ReadOutcome::Success;
  }
  WriteOutcome on_contended_write(const OpContext&) override {
    return WriteOutcome::Success;
  }
};

/// Maximal adversary: every contended operation aborts. The effect of
/// aborted writes is configurable; `Alternate` flips per write, which
/// exercises both branches of every caller.
class AlwaysAbortPolicy final : public AbortPolicy {
 public:
  enum class Effect { Never, Always, Alternate };

  explicit AlwaysAbortPolicy(Effect effect = Effect::Alternate)
      : effect_(effect) {}

  ReadOutcome on_contended_read(const OpContext&) override {
    return ReadOutcome::Abort;
  }
  WriteOutcome on_contended_write(const OpContext&) override;

 private:
  Effect effect_;
  bool flip_ = false;
};

/// Seeded random adversary: each contended read aborts with probability
/// p_abort_read, each contended write with p_abort_write; an aborted
/// write takes effect with probability p_effect.
class ProbabilisticAbortPolicy final : public AbortPolicy {
 public:
  ProbabilisticAbortPolicy(std::uint64_t seed, double p_abort_read,
                           double p_abort_write, double p_effect)
      : rng_(seed),
        p_abort_read_(p_abort_read),
        p_abort_write_(p_abort_write),
        p_effect_(p_effect) {}

  ReadOutcome on_contended_read(const OpContext&) override;
  WriteOutcome on_contended_write(const OpContext&) override;
  bool crashed_write_takes_effect(const OpContext&) override;

 private:
  util::Rng rng_;
  double p_abort_read_;
  double p_abort_write_;
  double p_effect_;
};

/// Time-phased adversary used by the chaos harness's abort storms: inside
/// each configured window [from, to) of model time, contended operations
/// abort with the window's escalated probability; outside every window
/// the decision is delegated to an optional calm policy (or succeeds).
/// Model time is taken from the operation's response step, which is when
/// the simulator consults the policy. Deterministic given the seed and
/// the (already deterministic) operation order.
class PhasedAbortPolicy final : public AbortPolicy {
 public:
  struct Phase {
    sim::Step from = 0;
    sim::Step to = 0;
    /// Abort probability for contended reads and writes in the window.
    double rate = 1.0;
    /// Probability an aborted (or crashed) write takes effect anyway.
    double p_effect = 0.5;
  };

  /// `calm` rules outside every phase window (may be nullptr: contended
  /// operations then succeed, i.e. the register is atomic when calm).
  /// calm must outlive this policy.
  explicit PhasedAbortPolicy(std::uint64_t seed, AbortPolicy* calm = nullptr)
      : rng_(seed), calm_(calm) {}

  void add_phase(Phase phase) { phases_.push_back(phase); }
  const std::vector<Phase>& phases() const { return phases_; }

  ReadOutcome on_contended_read(const OpContext& ctx) override;
  WriteOutcome on_contended_write(const OpContext& ctx) override;
  bool crashed_write_takes_effect(const OpContext& ctx) override;

  /// Aborts inflicted by storm windows (excludes calm-policy aborts).
  std::uint64_t storm_aborts() const { return storm_aborts_; }

 private:
  const Phase* phase_at(sim::Step t) const;

  util::Rng rng_;
  AbortPolicy* calm_;
  std::vector<Phase> phases_;
  std::uint64_t storm_aborts_ = 0;
};

/// Bounded exponential retry/backoff for aborted register operations.
///
/// The flip side of the abort adversaries above: the paper's Section 6
/// mechanisms win contended registers by *waiting out* the contention
/// (solo operations never abort), so every retry loop in this codebase
/// needs a back-off discipline with a hard bound. This one doubles from
/// `base` up to `cap` and is shared by the simulator workloads (delays
/// in steps) and the rt backend (delays in nanoseconds) -- the unit is
/// whatever the caller feeds in.
///
/// Deterministic by default; `jittered_delay` decorrelates threads that
/// abort in lockstep by drawing uniformly from [delay/2, delay] out of a
/// caller-owned seeded stream.
class BoundedBackoff {
 public:
  struct Options {
    std::uint64_t base = 1;     ///< delay after the first abort
    std::uint64_t cap = 1024;   ///< delays never exceed this
    /// Attempts strictly below this back off by 0 (immediate retry):
    /// the first abort is usually transient contention not worth a wait.
    int free_retries = 1;
  };

  BoundedBackoff() : BoundedBackoff(Options{}) {}
  explicit BoundedBackoff(Options options) : options_(options) {}

  /// Delay before retry number `attempt` (0-based count of prior aborts).
  std::uint64_t delay(int attempt) const;

  /// As `delay`, but uniformly jittered into [delay/2, delay].
  std::uint64_t jittered_delay(int attempt, util::Rng& rng) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Adversary targeting specific victim processes: only *their* contended
/// operations abort; everyone else succeeds. Used to show per-process
/// graceful degradation (the victims stop progressing, others do not).
class TargetedAbortPolicy final : public AbortPolicy {
 public:
  explicit TargetedAbortPolicy(std::vector<sim::Pid> victims)
      : victims_(std::move(victims)) {}

  ReadOutcome on_contended_read(const OpContext& ctx) override;
  WriteOutcome on_contended_write(const OpContext& ctx) override;

 private:
  bool is_victim(sim::Pid p) const;
  std::vector<sim::Pid> victims_;
};

}  // namespace tbwf::registers
