// RegisterFaultInjector: a deliberately *broken* register medium.
//
// Every policy in abort_policy.hpp plays by the abortable-register spec
// of Section 1.2: contended operations may abort, solo operations never
// do. This injector drops that courtesy -- it models registers that are
// physically degraded, the adversary of Section 6's problem (b) made
// permanent and worse:
//
//   Jam    every operation aborts, solo included, for the window (a
//          permanently jammed register when the window never closes);
//   Drop   a write reports success but the register never changes;
//   Stale  a read reports success but returns the previous value;
//   Torn   a multi-word write reports success but only half the bytes
//          land (the reader sees a mixture of old and new);
//   Flake  a transient burst in which operations abort with some rate.
//
// Profiles are armed per register (by arena index, or per SWSR link via
// arm_link) and per model-time window, decided from a seeded stream so a
// run replays exactly from (seed, operation order). An inner `calm`
// policy rules whenever no fault fires, so the injector composes with
// the chaos harness's PhasedAbortPolicy storms: faults first, storms
// behind, spec-conforming behavior last.
//
// The injector keeps ground-truth tallies of every fault it actually
// inflicted -- the hardened channels' *detected* counters are judged
// against these in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "registers/abort_policy.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace tbwf::util {
class Counters;
}  // namespace tbwf::util

namespace tbwf::sim {
class World;
}  // namespace tbwf::sim

namespace tbwf::registers {

enum class RegFaultKind : std::uint8_t { Jam, Drop, Stale, Torn, Flake };
inline constexpr int kRegFaultKinds = 5;

const char* to_string(RegFaultKind kind);

/// One armed fault: `kind` applies to register `reg` inside the
/// model-time window [from, to). to == kFaultForever never closes.
struct RegFaultProfile {
  std::uint32_t reg = 0xFFFFFFFFu;
  RegFaultKind kind = RegFaultKind::Flake;
  sim::Step from = 0;
  sim::Step to = 0;
  /// Per-operation firing probability (ignored by Jam, which always
  /// fires inside its window).
  double rate = 1.0;
};

inline constexpr sim::Step kFaultForever = ~sim::Step{0};

class RegisterFaultInjector final : public AbortPolicy {
 public:
  /// `calm` rules operations no fault fires on (nullptr: the register
  /// behaves atomically when healthy). calm must outlive this policy.
  explicit RegisterFaultInjector(std::uint64_t seed,
                                 AbortPolicy* calm = nullptr)
      : rng_(seed ^ 0xB0B0FA017CAFE5EDULL), calm_(calm) {}

  RegisterFaultInjector& add_fault(std::uint32_t reg, RegFaultKind kind,
                                   sim::Step from, sim::Step to,
                                   double rate = 1.0);

  /// Arm `kind` on every abortable register of the SWSR link p -> q whose
  /// name starts with `prefix` ("" matches every name; "Msg", "Hb1",
  /// "Hb2" select one channel register of the link). Returns the number
  /// of registers armed. Registers whose armed policy is not this
  /// injector are skipped -- their operations would never consult it.
  int arm_link(const sim::World& world, sim::Pid writer, sim::Pid reader,
               const std::string& prefix, RegFaultKind kind, sim::Step from,
               sim::Step to, double rate = 1.0);

  // -- AbortPolicy -------------------------------------------------------------
  ReadOutcome on_contended_read(const OpContext& ctx) override;
  WriteOutcome on_contended_write(const OpContext& ctx) override;
  ReadOutcome on_solo_read(const OpContext& ctx) override;
  WriteOutcome on_solo_write(const OpContext& ctx) override;
  bool crashed_write_takes_effect(const OpContext& ctx) override;

  // -- introspection ------------------------------------------------------------
  const std::vector<RegFaultProfile>& faults() const { return faults_; }

  /// Ground truth: operations this injector actually degraded, per kind.
  std::uint64_t injected(RegFaultKind kind) const {
    return injected_[static_cast<int>(kind)];
  }
  std::uint64_t injected_total() const;

  /// True iff a Jam profile on `reg` covers every step of [from, to).
  bool jam_covers(std::uint32_t reg, sim::Step from, sim::Step to) const;

  /// Export ground-truth tallies as regfault.injected.<kind> counters.
  void export_metrics(util::Counters& metrics) const;

 private:
  /// First armed profile on `reg` whose window covers `t` and that fires
  /// for this draw (Jam always fires; others consult rate). nullptr when
  /// the operation goes through clean.
  const RegFaultProfile* fire(std::uint32_t reg, sim::Step t, bool is_write);

  ReadOutcome read_outcome(const OpContext& ctx, bool contended);
  WriteOutcome write_outcome(const OpContext& ctx, bool contended);

  util::Rng rng_;
  AbortPolicy* calm_;
  std::vector<RegFaultProfile> faults_;
  std::uint64_t injected_[kRegFaultKinds] = {};
};

}  // namespace tbwf::registers
