#include "rt/rt_supervisor.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace tbwf::rt {

// -- RtWorkerContext -----------------------------------------------------------

bool RtWorkerContext::should_stop() const {
  // relaxed: the hottest load in the backend (every worker, every loop
  // iteration). Nothing is published THROUGH the flag -- a worker that
  // observes true simply returns, and the supervisor's join of that
  // thread provides the happens-before for everything it wrote. A
  // stale false only delays shutdown by one iteration.
  return sup_->stop_->load(std::memory_order_relaxed);
}

std::uint64_t RtWorkerContext::now_ns() const {
  return sup_->since_origin_ns();
}

void RtWorkerContext::record(RtEventKind kind, std::uint64_t arg) {
  sup_->trace_.record(tid_, incarnation_, kind, now_ns(), arg);
}

void RtWorkerContext::fault_point() {
  // Log a liveness tick every few calls: the conformance checker reads
  // realized timeliness off these (plus op events), so even a worker
  // that is spinning without completing keeps proving it is scheduled.
  if ((calls_++ & 15) == 0) record(RtEventKind::kStep);
  sup_->maybe_fire_faults(*this);
}

// -- RtSupervisor --------------------------------------------------------------

RtSupervisor::RtSupervisor(RtSupervisorOptions options, RtFaultPlan plan,
                           RtWorkerBody body)
    : options_(options),
      plan_(std::move(plan)),
      body_(std::move(body)),
      trace_(options.nthreads, options.trace_capacity),
      fault_seq_(static_cast<std::size_t>(options.nthreads)),
      slots_(static_cast<std::size_t>(options.nthreads)) {
  TBWF_ASSERT(options_.nthreads >= 1, "need at least one worker");
  TBWF_ASSERT(static_cast<bool>(body_), "need a worker body");
  for (const auto& k : plan_.kills()) {
    TBWF_ASSERT(k.tid < static_cast<std::uint32_t>(options_.nthreads),
                "kill targets an unknown tid");
    fault_seq_[k.tid].push_back({k.at_ns, true, k.restart_after_ns});
  }
  for (const auto& s : plan_.stalls()) {
    TBWF_ASSERT(s.tid < static_cast<std::uint32_t>(options_.nthreads),
                "stall targets an unknown tid");
    fault_seq_[s.tid].push_back({s.at_ns, false, s.duration_ns});
  }
  for (auto& seq : fault_seq_) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at_ns < b.at_ns;
                     });
  }
  membership_seq_ = plan_.membership();
  std::stable_sort(membership_seq_.begin(), membership_seq_.end(),
                   [](const core::MembershipEvent& a,
                      const core::MembershipEvent& b) { return a.at < b.at; });
}

RtSupervisor::~RtSupervisor() {
  // Defensive: if run() threw mid-way, make sure no thread outlives us.
  stop_->store(true, std::memory_order_release);
  for (auto& slot : slots_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

std::uint64_t RtSupervisor::steady_now_ns() const {
  // The injectable seam (satellite of the clock-fault layer): bound
  // worker threads read their per-thread distorted clock, everyone
  // else reads the raw monotone source. With no clock faults armed the
  // two are identical.
  return FaultClock::read();
}

void RtSupervisor::spawn(std::uint32_t tid) {
  Slot& slot = slots_[tid];
  slot.alive.store(true, std::memory_order_release);
  slot.joined = false;
  const std::uint32_t incarnation = slot.incarnation;
  slot.thread = std::thread([this, tid, incarnation] {
    worker_main(tid, incarnation);
  });
}

void RtSupervisor::worker_main(std::uint32_t tid,
                               std::uint32_t incarnation) {
  // Bound for the thread's whole life: the worker perceives time --
  // fault points, trace stamps, lease reads -- through its (possibly
  // faulted) clock. The plan's own fault offsets are thereby judged in
  // the victim's timeline, which keeps kill/stall logging and the
  // plan's accounting self-consistent.
  FaultClock::Binding bind(&clock_, tid);
  RtWorkerContext ctx(this, tid, incarnation,
                      plan_.seed() ^ (static_cast<std::uint64_t>(tid) << 32)
                          ^ incarnation);
  Slot& slot = slots_[tid];
  try {
    body_(ctx);
  } catch (const WorkerKilled&) {
    trace_.record(tid, incarnation, RtEventKind::kKill, since_origin_ns());
    slot.kills.fetch_add(1, std::memory_order_relaxed);
  }
  slot.alive.store(false, std::memory_order_release);
}

void RtSupervisor::maybe_fire_faults(RtWorkerContext& ctx) {
  Slot& slot = slots_[ctx.tid()];
  const auto& seq = fault_seq_[ctx.tid()];
  while (slot.next_fault < seq.size()) {
    const FaultEvent& ev = seq[slot.next_fault];
    const std::uint64_t now = since_origin_ns();
    if (now < ev.at_ns) return;
    ++slot.next_fault;
    if (ev.is_kill) {
      if (ev.arg > 0) slot.pending_restart_at_ns = now + ev.arg;
      throw WorkerKilled{ctx.tid()};
    }
    ctx.record(RtEventKind::kStall, ev.arg);
    slot.stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::nanoseconds(ev.arg));
  }
}

void RtSupervisor::fire_membership_events() {
  // Monitor thread only, like restarts: view changes land at the
  // monitor cadence (at most restart_poll late), and the hook runs
  // with no worker lock held -- workers observe the new view through
  // whatever the hook publishes (RtMembership's release store).
  while (next_membership_ < membership_seq_.size() &&
         since_origin_ns() >= membership_seq_[next_membership_].at) {
    if (options_.on_membership) {
      options_.on_membership(membership_seq_[next_membership_]);
    }
    ++next_membership_;
  }
}

void RtSupervisor::poll_restarts() {
  // relaxed: only the monitor thread itself ever stores stop_ before
  // the final joins, so this is a same-thread read.
  const bool stopping = stop_->load(std::memory_order_relaxed);
  for (std::uint32_t tid = 0; tid < slots_.size(); ++tid) {
    Slot& slot = slots_[tid];
    if (!slot.joined && !slot.alive.load(std::memory_order_acquire)) {
      slot.thread.join();
      slot.joined = true;
    }
    if (slot.joined && slot.pending_restart_at_ns > 0 && !stopping) {
      if (since_origin_ns() >= slot.pending_restart_at_ns) {
        slot.pending_restart_at_ns = 0;
        ++slot.incarnation;
        ++slot.restarts;
        if (options_.on_restart) {
          options_.on_restart(tid, slot.incarnation);
        }
        trace_.record(tid, slot.incarnation, RtEventKind::kRestart,
                      since_origin_ns(), slot.incarnation);
        spawn(tid);
      }
    }
  }
}

void RtSupervisor::run() {
  TBWF_ASSERT(!ran_, "RtSupervisor::run may be called once");
  ran_ = true;
  origin_ns_ = steady_now_ns();
  clock_.arm(origin_ns_, plan_.clock_faults());
  injector_.arm(plan_.seed() ^ 0x53544F524DULL /* "STORM" */, origin_ns_,
                plan_.fault_windows());
  for (std::uint32_t tid = 0; tid < slots_.size(); ++tid) spawn(tid);

  const std::uint64_t deadline =
      origin_ns_ + static_cast<std::uint64_t>(options_.run_for.count());
  while (steady_now_ns() < deadline) {
    const std::uint64_t remaining = deadline - steady_now_ns();
    std::this_thread::sleep_for(std::chrono::nanoseconds(std::min(
        remaining, static_cast<std::uint64_t>(options_.restart_poll.count()))));
    fire_membership_events();
    poll_restarts();
  }

  // release is not strictly required (join below synchronizes), but it
  // keeps the flag a clean publication point for any future observer.
  stop_->store(true, std::memory_order_release);
  for (auto& slot : slots_) {
    if (slot.thread.joinable()) slot.thread.join();
    slot.joined = true;
  }
  run_end_ns_ = since_origin_ns();
  tally_counters();
}

void RtSupervisor::tally_counters() {
  const RtTraceSnapshot snap = trace_.snapshot();
  for (int t = 0; t < snap.n(); ++t) {
    const std::string tid = std::to_string(t);
    // Lifecycle faults come from the firsthand slot tallies (the ring
    // may have evicted early events); the rest are read off the trace.
    const Slot& slot = slots_[static_cast<std::size_t>(t)];
    counters_.inc("rt.kills.t" + tid,
                  slot.kills.load(std::memory_order_relaxed));
    counters_.inc("rt.stalls.t" + tid,
                  slot.stalls.load(std::memory_order_relaxed));
    counters_.inc("rt.restarts.t" + tid, slot.restarts);
    for (const RtEvent& ev : snap.per_tid[static_cast<std::size_t>(t)]) {
      switch (ev.kind) {
        case RtEventKind::kAbort:
          counters_.inc("rt.aborts.t" + tid);
          break;
        case RtEventKind::kStaleFenceBlocked:
          counters_.inc("rt.stale_blocked.t" + tid);
          break;
        case RtEventKind::kOpComplete:
          counters_.inc("rt.ops.t" + tid);
          break;
        default:
          break;
      }
    }
    counters_.inc("rt.trace_dropped.t" + tid,
                  snap.dropped[static_cast<std::size_t>(t)]);
  }
  counters_.inc("rt.storm_aborts", injector_.injected());
  for (int k = 0; k < registers::kRegFaultKinds; ++k) {
    const auto kind = static_cast<registers::RegFaultKind>(k);
    counters_.inc(std::string("rt.regfault.injected.") +
                      registers::to_string(kind),
                  injector_.injected(kind));
  }
}

}  // namespace tbwf::rt
