// RtSupervisor: owns the worker threads of an rt run, injects the
// faults of an RtFaultPlan at cooperative fault points, and restarts
// dead workers -- the rt twin of the simulator's World + chaos harness.
//
// Supervision model:
//   - the supervisor spawns one worker thread per tid and runs the
//     caller's RtWorkerBody in it (the body is the worker's whole
//     loop: do operations, call ctx.fault_point() regularly -- also
//     INSIDE multi-access operations, so kills land mid-operation);
//   - a Kill fires by throwing WorkerKilled out of fault_point; the
//     supervisor's thread wrapper catches it, logs the death, and the
//     monitor loop joins the corpse and -- if the plan says so --
//     spawns a fresh incarnation later: local state lost, shared
//     objects untouched, mirroring World::restart's fresh root tasks;
//   - a Stall fires by sleeping through the window inside fault_point:
//     the thread is alive but not timely, exactly a StutterPhase;
//   - Storms are armed on the supervisor's RtAbortInjector; attach it
//     to the workload's RtAbortableRegs to expose them.
//
// Before a restarted incarnation runs, the options.on_restart hook
// fires from the monitor thread (happens-before the new thread's
// body). Wire lease fencing there: `elector.revoke(tid)` guarantees
// any token the dead incarnation captured can never validate again,
// so a revived worker cannot commit under its stale lease.
//
// Every worker logs into an RtTrace; after run() returns, snapshot()
// feeds core::check_rt_conformance, and counters() carries per-thread
// fault tallies (rt.kills.t<i>, rt.stalls.t<i>, rt.restarts.t<i>,
// rt.aborts.t<i>, ...).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "rt/rt_clock.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_registers.hpp"
#include "rt/rt_trace.hpp"
#include "util/cacheline.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace tbwf::rt {

class RtSupervisor;

/// The worker's handle on the runtime: fault points, trace logging,
/// stop flag, per-incarnation RNG. One context per incarnation, used
/// only by its own thread.
class RtWorkerContext {
 public:
  std::uint32_t tid() const { return tid_; }
  std::uint32_t incarnation() const { return incarnation_; }
  bool should_stop() const;

  /// Nanoseconds since the supervisor's run origin.
  std::uint64_t now_ns() const;

  /// Cooperative fault point: fires any due Kill (throws WorkerKilled)
  /// or Stall (sleeps) for this tid, and logs a liveness kStep event
  /// every few calls. Call between operations AND inside them.
  void fault_point();

  void record(RtEventKind kind, std::uint64_t arg = 0);
  void op_start() { record(RtEventKind::kOpStart); }
  void op_complete(std::uint64_t arg = 0) {
    record(RtEventKind::kOpComplete, arg);
  }

  util::Rng& rng() { return rng_; }

 private:
  friend class RtSupervisor;
  RtWorkerContext(RtSupervisor* sup, std::uint32_t tid,
                  std::uint32_t incarnation, std::uint64_t rng_seed)
      : sup_(sup), tid_(tid), incarnation_(incarnation), rng_(rng_seed) {}

  RtSupervisor* sup_;
  std::uint32_t tid_;
  std::uint32_t incarnation_;
  util::Rng rng_;
  std::uint64_t calls_ = 0;
};

/// The whole life of one worker incarnation. Must return when
/// ctx.should_stop() turns true and let WorkerKilled propagate.
using RtWorkerBody = std::function<void(RtWorkerContext&)>;

struct RtSupervisorOptions {
  int nthreads = 4;
  std::chrono::nanoseconds run_for = std::chrono::milliseconds(24);
  /// Per-thread ring size. A busy worker logs ~6 events per operation,
  /// so size this for op_rate * run_for with headroom: overflow evicts
  /// the oldest events, and once it reaches past the stable suffix the
  /// conformance checker calls the run inconclusive.
  std::size_t trace_capacity = 1 << 17;
  /// Monitor-loop period: dead workers are noticed and restarted with
  /// at most this much extra latency.
  std::chrono::nanoseconds restart_poll = std::chrono::microseconds(200);
  /// Fired from the monitor thread after the dead incarnation is
  /// joined and before its replacement is spawned. Fence stale leases
  /// here (LeaseElector::revoke).
  std::function<void(std::uint32_t tid, std::uint32_t incarnation)>
      on_restart;
  /// Fired from the monitor thread when a plan membership event comes
  /// due (at the monitor cadence, so with at most restart_poll extra
  /// latency). Apply the view change here (RtMembership::apply) and
  /// fence a departing member's leases (LeaseElector::revoke) -- the
  /// hook runs outside every worker thread, mirroring on_restart.
  std::function<void(const core::MembershipEvent&)> on_membership;
};

class RtSupervisor {
 public:
  RtSupervisor(RtSupervisorOptions options, RtFaultPlan plan,
               RtWorkerBody body);
  ~RtSupervisor();

  RtSupervisor(const RtSupervisor&) = delete;
  RtSupervisor& operator=(const RtSupervisor&) = delete;

  /// Run the whole supervised episode; blocks until every worker has
  /// been joined. Call at most once.
  void run();

  /// Quiescent trace snapshot; valid after run() returned.
  RtTraceSnapshot snapshot() const { return trace_.snapshot(); }

  /// Per-thread fault tallies, filled in by run()'s final sweep.
  util::Counters& counters() { return counters_; }

  /// The storm injector, armed with the plan's windows at run() start.
  /// Attach to the workload's registers before calling run().
  RtAbortInjector& injector() { return injector_; }

  /// The run's time seam, armed with the plan's clock faults at run()
  /// start. Every worker thread is bound to it for its whole life, so
  /// FaultClock::read() (and everything built on it: ctx.now_ns, trace
  /// timestamps, lease clocks, injector windows) sees the distorted
  /// per-thread time; the monitor thread stays unbound and honest.
  const FaultClock& clock() const { return clock_; }

  const RtFaultPlan& plan() const { return plan_; }
  std::uint64_t origin_ns() const { return origin_ns_; }
  /// Wall-clock length of the finished run (ns since origin).
  std::uint64_t run_end_ns() const { return run_end_ns_; }

 private:
  friend class RtWorkerContext;

  /// One per-tid fault timeline entry (kills and stalls merged, sorted).
  struct FaultEvent {
    std::uint64_t at_ns = 0;
    bool is_kill = false;
    std::uint64_t arg = 0;  ///< kill: restart_after_ns; stall: duration_ns
  };

  /// One line per slot: alive/kills/stalls are bumped by the owning
  /// worker while the monitor thread polls every slot each period --
  /// without the isolation each poll would bounce the workers' lines.
  struct alignas(util::kCacheLineSize) Slot {
    std::thread thread;
    /// release by the dying worker (its last act), acquire by the
    /// monitor before join: the join precondition is "alive == false".
    std::atomic<bool> alive{false};
    std::uint32_t incarnation = 0;
    /// Cursor into fault_seq_[tid]; advanced only by the worker thread,
    /// read by the monitor only after join (happens-before via join).
    std::size_t next_fault = 0;
    /// Set by the dying worker before alive goes false; consumed by the
    /// monitor (0 = no restart scheduled).
    std::uint64_t pending_restart_at_ns = 0;
    bool joined = true;
    /// Firsthand lifecycle tallies (the trace ring is bounded and may
    /// evict early events; these never lose a fault). kills/stalls are
    /// bumped by the worker thread (relaxed monotone counters -- the
    /// final exact read happens after join), restarts by the monitor.
    std::atomic<std::uint64_t> kills{0};
    std::atomic<std::uint64_t> stalls{0};
    std::uint64_t restarts = 0;
  };

  /// The calling thread's perceived absolute time: distorted for bound
  /// workers, the raw monotone source for the monitor/main thread.
  std::uint64_t steady_now_ns() const;
  std::uint64_t since_origin_ns() const { return steady_now_ns() - origin_ns_; }
  void spawn(std::uint32_t tid);
  void worker_main(std::uint32_t tid, std::uint32_t incarnation);
  void maybe_fire_faults(RtWorkerContext& ctx);
  void poll_restarts();
  void fire_membership_events();
  void tally_counters();

  RtSupervisorOptions options_;
  RtFaultPlan plan_;
  RtWorkerBody body_;
  RtTrace trace_;
  RtAbortInjector injector_;
  FaultClock clock_;
  util::Counters counters_;
  std::vector<std::vector<FaultEvent>> fault_seq_;
  /// Plan membership events sorted by at_ns; cursor advanced by the
  /// monitor thread only.
  std::vector<core::MembershipEvent> membership_seq_;
  std::size_t next_membership_ = 0;
  std::vector<Slot> slots_;
  /// Shutdown flag, polled by every worker each loop iteration (see
  /// should_stop for the relaxed-load rationale). Own line so the polls
  /// stay local until the single store flips it.
  util::CachelinePadded<std::atomic<bool>> stop_{false};
  std::uint64_t origin_ns_ = 0;
  std::uint64_t run_end_ns_ = 0;
  bool ran_ = false;
};

}  // namespace tbwf::rt
