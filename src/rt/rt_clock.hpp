// FaultClock: the injectable time seam for the rt backend.
//
// Every rt time read funnels through FaultClock::read(), a plain
// function usable as LeaseElector::ClockFn. A thread that is *bound*
// to an armed FaultClock (the supervisor binds each worker for the
// worker's lifetime) observes the monotone source distorted by the
// plan's per-thread clock-fault windows; an unbound thread (the
// monitor loop, the main thread, samplers) observes true time. That
// split is deliberate: the supervisor's fault-firing timeline stays
// honest while each worker's *perception* of time -- its lease reads,
// trace timestamps, fault-point checks, injector draws -- degrades
// exactly as the plan dictates.
//
// Five distortions, all windows [from_ns, to_ns) in run-origin offsets:
//
//   - Skew: a constant signed offset for the whole window (the classic
//     "this clock is 3 ms fast");
//   - Drift: a progressive ppm-style error -- offset grows as
//     (t - from) * magnitude / 1e6, the shape of a bad oscillator;
//   - JumpForward / JumpBackward: a step offset, semantically a
//     one-shot jump that the source later corrects when the window
//     closes (NTP step, VM migration);
//   - Freeze: observed time sticks at `from` for the window (tickless
//     stall, SMI storm), then snaps back to true time.
//
// Overlapping windows on one thread sum their offsets; a Freeze
// overrides them. Observed time is clamped at the run origin so a
// backward fault can never underflow the 64-bit clock.
//
// Concurrency: arm() must be called before the observed threads spawn
// (the supervisor arms in run(), pre-spawn); the window list is
// immutable afterwards, so reads need no synchronization -- thread
// creation publishes it. The binding itself is thread_local.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

namespace tbwf::rt {

enum class RtClockFaultKind {
  Skew,
  Drift,
  JumpForward,
  JumpBackward,
  Freeze,
};

inline const char* to_string(RtClockFaultKind kind) {
  switch (kind) {
    case RtClockFaultKind::Skew:
      return "skew";
    case RtClockFaultKind::Drift:
      return "drift";
    case RtClockFaultKind::JumpForward:
      return "jump+";
    case RtClockFaultKind::JumpBackward:
      return "jump-";
    case RtClockFaultKind::Freeze:
      return "freeze";
  }
  return "?";
}

/// One per-thread clock-fault window, offsets from the run origin.
/// `magnitude` is signed ns for Skew/JumpForward/JumpBackward, signed
/// ppm for Drift, and unused for Freeze.
struct RtClockFaultEvent {
  static constexpr std::uint64_t kForeverNs = ~std::uint64_t{0};

  RtClockFaultKind kind = RtClockFaultKind::Skew;
  std::uint32_t tid = 0;
  std::uint64_t from_ns = 0;
  std::uint64_t to_ns = 0;  ///< kForeverNs never closes
  std::int64_t magnitude = 0;
};

/// The raw monotone source, ns since an unspecified epoch.
inline std::uint64_t raw_steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class FaultClock {
 public:
  FaultClock() = default;

  /// Install the fault windows. Must happen before any observed thread
  /// spawns; thread creation is the publication edge.
  void arm(std::uint64_t origin_ns, std::vector<RtClockFaultEvent> events) {
    origin_ns_ = origin_ns;
    events_ = std::move(events);
  }

  std::uint64_t origin_ns() const { return origin_ns_; }
  const std::vector<RtClockFaultEvent>& events() const { return events_; }

  /// What thread `tid` believes the absolute clock reads when the true
  /// absolute clock reads `true_abs_ns`.
  std::uint64_t observed_ns(std::uint32_t tid,
                            std::uint64_t true_abs_ns) const {
    if (events_.empty()) return true_abs_ns;
    const std::uint64_t rel =
        true_abs_ns >= origin_ns_ ? true_abs_ns - origin_ns_ : 0;
    std::int64_t offset = 0;
    bool frozen = false;
    std::uint64_t freeze_at = 0;
    for (const auto& ev : events_) {
      if (ev.tid != tid || rel < ev.from_ns) continue;
      if (ev.to_ns != RtClockFaultEvent::kForeverNs && rel >= ev.to_ns) {
        continue;
      }
      switch (ev.kind) {
        case RtClockFaultKind::Skew:
        case RtClockFaultKind::JumpForward:
        case RtClockFaultKind::JumpBackward:
          offset += ev.magnitude;
          break;
        case RtClockFaultKind::Drift:
          offset += static_cast<std::int64_t>(rel - ev.from_ns) *
                    ev.magnitude / 1000000;
          break;
        case RtClockFaultKind::Freeze:
          frozen = true;
          freeze_at = ev.from_ns;
          break;
      }
    }
    std::int64_t obs = frozen ? static_cast<std::int64_t>(freeze_at)
                              : static_cast<std::int64_t>(rel) + offset;
    if (obs < 0) obs = 0;
    return origin_ns_ + static_cast<std::uint64_t>(obs);
  }

  /// This thread's current observed absolute time.
  std::uint64_t now_ns(std::uint32_t tid) const {
    return observed_ns(tid, raw_steady_ns());
  }

  /// RAII thread binding: while alive, FaultClock::read() on this
  /// thread routes through `clock` as `tid`. Nestable (restores the
  /// previous binding on destruction).
  class Binding {
   public:
    Binding(const FaultClock* clock, std::uint32_t tid)
        : prev_clock_(tl_clock_), prev_tid_(tl_tid_) {
      tl_clock_ = clock;
      tl_tid_ = tid;
    }
    ~Binding() {
      tl_clock_ = prev_clock_;
      tl_tid_ = prev_tid_;
    }
    Binding(const Binding&) = delete;
    Binding& operator=(const Binding&) = delete;

   private:
    const FaultClock* prev_clock_;
    std::uint32_t prev_tid_;
  };

  /// The shared time seam: distorted for bound threads, the raw
  /// monotone source otherwise. Matches LeaseElector::ClockFn.
  static std::uint64_t read() {
    const std::uint64_t t = raw_steady_ns();
    return tl_clock_ ? tl_clock_->observed_ns(tl_tid_, t) : t;
  }

  /// True iff the calling thread currently reads through a binding.
  static bool bound() { return tl_clock_ != nullptr; }

 private:
  std::uint64_t origin_ns_ = 0;
  std::vector<RtClockFaultEvent> events_;

  inline static thread_local const FaultClock* tl_clock_ = nullptr;
  inline static thread_local std::uint32_t tl_tid_ = 0;
};

}  // namespace tbwf::rt
