// Real-threads baseline counters for the E11 wall-clock benchmark.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace tbwf::rt {

/// Blocking baseline: std::mutex around a plain counter. Progress is
/// neither wait-free nor gracefully degrading (a descheduled lock
/// holder blocks everyone), but uncontended it is the yardstick.
class RtMutexCounter {
 public:
  std::int64_t fetch_add(std::int64_t delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t before = value_;
    value_ += delta;
    return before;
  }

 private:
  std::mutex mutex_;
  std::int64_t value_ = 0;
};

/// Lock-free baseline: explicit CAS loop (system-wide progress; an
/// individual thread can starve under adversarial preemption).
class RtCasCounter {
 public:
  std::int64_t fetch_add(std::int64_t delta) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
    return cur;
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Wait-free hardware baseline: a single fetch_add instruction; the
/// hardware-assisted upper bound.
class RtFaaCounter {
 public:
  std::int64_t fetch_add(std::int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

}  // namespace tbwf::rt
