// Real-threads baseline counters for the E11 wall-clock benchmark.
//
// The contended word of each baseline is cache-line-aligned so the
// comparison against the TBWF-style counters prices the algorithms, not
// accidental false sharing between adjacent globals in the bench binary.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/cacheline.hpp"

namespace tbwf::rt {

/// Blocking baseline: std::mutex around a plain counter. Progress is
/// neither wait-free nor gracefully degrading (a descheduled lock
/// holder blocks everyone), but uncontended it is the yardstick.
class RtMutexCounter {
 public:
  std::int64_t fetch_add(std::int64_t delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t before = count_;
    count_ += delta;
    return before;
  }

 private:
  std::mutex mutex_;
  std::int64_t count_ = 0;  ///< plain: guarded by mutex_, not atomic
};

/// Lock-free baseline: explicit CAS loop (system-wide progress; an
/// individual thread can starve under adversarial preemption).
class alignas(util::kCacheLineSize) RtCasCounter {
 public:
  std::int64_t fetch_add(std::int64_t delta) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
    return cur;
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Wait-free hardware baseline: a single fetch_add instruction; the
/// hardware-assisted upper bound.
class alignas(util::kCacheLineSize) RtFaaCounter {
 public:
  std::int64_t fetch_add(std::int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

}  // namespace tbwf::rt
