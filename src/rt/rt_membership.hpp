// Real-thread membership view: one packed atomic word -- epoch in the
// high 32 bits, a member bitmask in the low 32 -- so workers read the
// whole view (epoch + set) in a single acquire load and can never see
// a new epoch paired with an old member set. Only the supervisor's
// monitor thread mutates it (release stores through apply()), which is
// what makes the plain read-modify-write below safe without a CAS
// loop: there is exactly one writer.
//
// Fencing on removal is delegated to the lease layer: the service's
// on_membership hook calls LeaseElector::revoke(tid) for a departing
// member, which frees the lease AND bumps the monotone fence, so the
// departed leader's stale token fails validate() before its next state
// write (recorded as kStaleFenceBlocked). Epoch bumps here are the
// bookkeeping the per-epoch conformance grading keys off.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/membership.hpp"

namespace tbwf::rt {

class RtMembership {
 public:
  static constexpr int kMaxThreads = 32;

  /// Everyone with tid < nthreads is a member of epoch 0.
  explicit RtMembership(int nthreads) {
    const std::uint32_t mask =
        nthreads >= kMaxThreads
            ? ~std::uint32_t{0}
            : ((std::uint32_t{1} << nthreads) - 1);
    view_.store(pack(0, mask), std::memory_order_release);
  }

  /// Apply one view change. Monitor thread only (single writer).
  void apply(const core::MembershipEvent& event) {
    const std::uint64_t v = view_.load(std::memory_order_relaxed);
    std::uint32_t mask = unpack_mask(v);
    switch (event.kind) {
      case core::MembershipKind::kJoin:
        mask |= bit(event.pid);
        break;
      case core::MembershipKind::kLeave:
        mask &= ~bit(event.pid);
        break;
      case core::MembershipKind::kReplace:
        mask &= ~bit(event.pid);
        mask |= bit(event.replacement);
        break;
    }
    view_.store(pack(unpack_epoch(v) + 1, mask), std::memory_order_release);
  }

  std::uint32_t epoch() const {
    return unpack_epoch(view_.load(std::memory_order_acquire));
  }
  bool member(int tid) const {
    return (unpack_mask(view_.load(std::memory_order_acquire)) & bit(tid)) !=
           0;
  }
  /// One coherent (epoch, member?) sample from a single load.
  struct View {
    std::uint32_t epoch;
    std::uint32_t mask;
    bool member(int tid) const { return (mask & bit(tid)) != 0; }
  };
  View sample() const {
    const std::uint64_t v = view_.load(std::memory_order_acquire);
    return {unpack_epoch(v), unpack_mask(v)};
  }

 private:
  static std::uint32_t bit(int tid) {
    return (tid >= 0 && tid < kMaxThreads)
               ? (std::uint32_t{1} << static_cast<unsigned>(tid))
               : 0;
  }
  static std::uint64_t pack(std::uint32_t epoch, std::uint32_t mask) {
    return (static_cast<std::uint64_t>(epoch) << 32) | mask;
  }
  static std::uint32_t unpack_epoch(std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32);
  }
  static std::uint32_t unpack_mask(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }

  std::atomic<std::uint64_t> view_{0};
};

}  // namespace tbwf::rt
