// Wait-free-friendly memory reclamation for the rt throughput engine.
//
// The batched engine (rt_qa_batched.hpp) publishes immutable frontier
// snapshot nodes through a single atomic pointer; the displaced node
// must eventually be freed while any number of waiter threads may still
// be reading it. The telamon exemplar (SNIPPETS.md #2/#3) flags its
// allocator as the unsolved wait-freedom hole -- this header is the
// "do better": bounded per-thread retire rings drained against
// single-slot hazard pointers.
//
//   * every thread owns ONE hazard slot (it reads at most one node at a
//     time) and ONE retire ring of fixed capacity;
//   * retiring into a full ring runs a scan: load all n hazard slots,
//     free every pending node not currently protected. At most n nodes
//     can be protected, and the capacity exceeds n, so every scan frees
//     at least capacity - n nodes -- the ring NEVER grows past its
//     capacity, so retired-but-unfreed nodes total at most
//     nthreads * capacity at all times. Clients add their own
//     in-flight terms on top: the batched engine's live_node_bound()
//     (rt_qa_batched.hpp) is nthreads * capacity + 2 * nthreads + 1 --
//     rings at capacity, plus per thread one allocated-but-unpublished
//     node and one displaced node between a successful publish and its
//     retire() handoff, plus the one published frontier;
//   * no operation blocks: protect() is a validated load that retries
//     only while the pointer it chases moves (each retry makes global
//     progress -- somebody published), retire()/scan() are O(n * cap)
//     straight-line code, and nothing ever waits on another thread.
//
// Memory-order discipline (docs/MODEL.md, "The rt memory model"):
//   seq_cst   the hazard publish, its validation re-read, and the
//             reclaimer's hazard scan. The classic hazard-pointer
//             argument needs a single total order between "I stored my
//             hazard then re-validated the source" and "I swapped the
//             node out then scanned the hazards": if the validation
//             still saw the node, the scan that could free it must see
//             the hazard. release/acquire alone cannot order the two
//             independent locations.
//   acquire   first load of the source pointer (pairs with the
//             publisher's CAS: the node's fields are fully built).
//   release   hazard unprotect (nothing is published through it;
//             release keeps the preceding reads from sinking below).
//   relaxed   free/alloc tallies -- monotone statistics only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

template <class Node>
class HazardDomain {
 public:
  explicit HazardDomain(int nthreads, std::size_t ring_capacity = 0)
      : n_(nthreads),
        cap_(ring_capacity != 0
                 ? ring_capacity
                 : static_cast<std::size_t>(2 * nthreads + 8)),
        hazards_(n_),
        rings_(n_) {
    TBWF_ASSERT(cap_ > static_cast<std::size_t>(n_),
                "retire ring must outsize the hazard-slot count");
    TBWF_ASSERT(n_ <= kMaxHazards, "hazard scan buffer too small");
    for (auto& ring : rings_) {
      ring->pending.reserve(cap_ + 1);
    }
  }

  ~HazardDomain() {
    // Callers guarantee quiescence before destruction (threads joined).
    for (auto& ring : rings_) {
      for (const Node* node : ring->pending) {
        delete node;
        freed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  /// Protect the current value of `src` for thread `tid`: after return,
  /// the node is safe to dereference until unprotect(tid). Lock-free: each
  /// retry means the pointer moved, i.e. another thread completed a
  /// publish.
  const Node* protect(int tid, const std::atomic<const Node*>& src) {
    const Node* candidate = src.load(std::memory_order_acquire);
    for (;;) {
      hazards_[tid]->store(candidate, std::memory_order_seq_cst);
      const Node* again = src.load(std::memory_order_seq_cst);
      if (again == candidate) return candidate;
      candidate = again;
    }
  }

  void unprotect(int tid) {
    hazards_[tid]->store(nullptr, std::memory_order_release);
  }

  /// Hand a displaced node to thread tid's ring. Must be called at most
  /// once per node, by the thread that unlinked it.
  void retire(int tid, const Node* node) {
    Ring& ring = *rings_[tid];
    ring.pending.push_back(node);
    if (ring.pending.size() > ring.high_water) {
      ring.high_water = ring.pending.size();
    }
    if (ring.pending.size() >= cap_) scan(ring);
  }

  /// Highest pending-count thread tid's ring ever reached. Read it only
  /// from tid's thread or after joining it.
  std::size_t high_water(int tid) const { return rings_[tid]->high_water; }
  std::size_t capacity() const { return cap_; }
  std::uint64_t freed() const { return freed_.load(std::memory_order_relaxed); }

 private:
  struct Ring {
    std::vector<const Node*> pending;
    std::size_t high_water = 0;
  };

  void scan(Ring& ring) {
    const Node* held[kMaxHazards];
    int held_count = 0;
    for (int t = 0; t < n_; ++t) {
      const Node* h = hazards_[t]->load(std::memory_order_seq_cst);
      if (h != nullptr) held[held_count++] = h;
    }
    std::size_t kept = 0;
    for (const Node* node : ring.pending) {
      bool protected_now = false;
      for (int i = 0; i < held_count; ++i) {
        if (held[i] == node) {
          protected_now = true;
          break;
        }
      }
      if (protected_now) {
        ring.pending[kept++] = node;
      } else {
        delete node;
        freed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ring.pending.resize(kept);
  }

  static constexpr int kMaxHazards = 64;

  int n_;
  std::size_t cap_;
  std::vector<util::CachelinePadded<std::atomic<const Node*>>> hazards_;
  std::vector<util::CachelinePadded<Ring>> rings_;
  std::atomic<std::uint64_t> freed_{0};
};

}  // namespace tbwf::rt
