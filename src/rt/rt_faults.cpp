#include "rt/rt_faults.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace tbwf::rt {

RtFaultPlan& RtFaultPlan::kill(std::uint32_t tid, std::uint64_t at_ns,
                               std::uint64_t restart_after_ns) {
  kills_.push_back({tid, at_ns, restart_after_ns});
  return *this;
}

RtFaultPlan& RtFaultPlan::stall(std::uint32_t tid, std::uint64_t at_ns,
                                std::uint64_t duration_ns) {
  stalls_.push_back({tid, at_ns, duration_ns});
  return *this;
}

RtFaultPlan& RtFaultPlan::storm(std::uint64_t from_ns, std::uint64_t to_ns,
                                std::uint32_t rate_millionths) {
  TBWF_ASSERT(from_ns < to_ns, "storm window must be non-empty");
  storms_.push_back({from_ns, to_ns, rate_millionths});
  return *this;
}

RtFaultPlan& RtFaultPlan::reg_fault(registers::RegFaultKind kind,
                                    std::uint64_t from_ns,
                                    std::uint64_t to_ns,
                                    std::uint32_t rate_millionths) {
  TBWF_ASSERT(to_ns == RtAbortInjector::kForeverNs || from_ns < to_ns,
              "reg-fault window must be non-empty");
  reg_faults_.push_back({kind, from_ns, to_ns, rate_millionths});
  return *this;
}

RtFaultPlan& RtFaultPlan::join(std::uint32_t tid, std::uint64_t at_ns) {
  membership_.push_back(
      {core::MembershipKind::kJoin, static_cast<int>(tid), -1, at_ns});
  return *this;
}

RtFaultPlan& RtFaultPlan::leave(std::uint32_t tid, std::uint64_t at_ns) {
  membership_.push_back(
      {core::MembershipKind::kLeave, static_cast<int>(tid), -1, at_ns});
  return *this;
}

RtFaultPlan& RtFaultPlan::replace(std::uint32_t out, std::uint32_t in,
                                  std::uint64_t at_ns) {
  membership_.push_back({core::MembershipKind::kReplace,
                         static_cast<int>(out), static_cast<int>(in), at_ns});
  return *this;
}

RtFaultPlan& RtFaultPlan::clock_fault(RtClockFaultKind kind,
                                      std::uint32_t tid,
                                      std::uint64_t from_ns,
                                      std::uint64_t to_ns,
                                      std::int64_t magnitude) {
  TBWF_ASSERT(to_ns == RtClockFaultEvent::kForeverNs || from_ns < to_ns,
              "clock-fault window must be non-empty");
  TBWF_ASSERT(to_ns != RtClockFaultEvent::kForeverNs ||
                  kind == RtClockFaultKind::Skew ||
                  kind == RtClockFaultKind::Drift,
              "only skew and drift may be permanent");
  clock_faults_.push_back({kind, tid, from_ns, to_ns, magnitude});
  return *this;
}

RtFaultPlan RtFaultPlan::generate(std::uint64_t seed,
                                  const GenOptions& options) {
  TBWF_ASSERT(options.nthreads >= 1, "need at least one thread");
  TBWF_ASSERT(options.quiet_tail > 0.0 && options.quiet_tail < 1.0,
              "quiet_tail must be a fraction of the horizon");
  RtFaultPlan plan(seed);
  util::Rng rng(seed ^ 0x52545F46414C5453ULL);  // "RT_FALTS"

  const auto lo = static_cast<std::uint64_t>(
      static_cast<double>(options.horizon_ns) * 0.05);
  const auto hi = static_cast<std::uint64_t>(
      static_cast<double>(options.horizon_ns) * (1.0 - options.quiet_tail));
  const auto at = [&] { return rng.range(lo, hi); };

  // One thread is spared permanent kills so the run keeps a survivor.
  const auto survivor = static_cast<std::uint32_t>(
      rng.below(static_cast<std::uint64_t>(options.nthreads)));

  const int nkills =
      options.max_kills > 0
          ? static_cast<int>(rng.below(
                static_cast<std::uint64_t>(options.max_kills) + 1))
          : 0;
  for (int i = 0; i < nkills; ++i) {
    const auto tid = static_cast<std::uint32_t>(
        rng.below(static_cast<std::uint64_t>(options.nthreads)));
    const std::uint64_t t = at();
    const bool restarts =
        rng.chance(options.p_restart) ||
        (!options.allow_kill_all && tid == survivor);
    std::uint64_t after = 0;
    if (restarts) {
      // Revive within the event window so the quiet tail stays quiet.
      const std::uint64_t max_after = t < hi ? hi - t : 1;
      after = 1 + rng.below(std::max<std::uint64_t>(max_after, 1));
    }
    // A thread can only die once without restart; later kills of the
    // same tid are fine (they target the revived incarnation) as long
    // as every kill but possibly the last restarts. Keep it simple:
    // allow at most one permanent kill per tid.
    if (after == 0 && plan.killed_at_end(tid)) continue;
    plan.kill(tid, t, after);
  }
  // Drop kills scheduled at-or-after a permanent kill of the same tid:
  // a permanently dead thread has no fault points left, so such a kill
  // could never fire and would make the plan's accounting unsatisfiable.
  // (Draw order is not time order, so this can't be checked in-loop.)
  {
    auto& kills = plan.kills_;
    std::vector<std::uint64_t> dead_from(
        static_cast<std::size_t>(options.nthreads), ~std::uint64_t{0});
    for (const auto& k : kills) {
      if (k.restart_after_ns == 0) dead_from[k.tid] = k.at_ns;
    }
    kills.erase(std::remove_if(kills.begin(), kills.end(),
                               [&](const RtKill& k) {
                                 return k.restart_after_ns > 0 &&
                                        k.at_ns >= dead_from[k.tid];
                               }),
                kills.end());
  }

  const int nstalls =
      options.max_stalls > 0
          ? static_cast<int>(rng.below(
                static_cast<std::uint64_t>(options.max_stalls) + 1))
          : 0;
  for (int i = 0; i < nstalls; ++i) {
    const auto tid = static_cast<std::uint32_t>(
        rng.below(static_cast<std::uint64_t>(options.nthreads)));
    const std::uint64_t t = at();
    std::uint64_t d =
        rng.range(options.min_stall_ns, options.max_stall_ns);
    // Keep the stall inside the event window.
    if (t + d > hi) d = hi > t ? hi - t : 1;
    plan.stall(tid, t, d);
  }

  const int nstorms =
      options.max_storms > 0
          ? static_cast<int>(rng.below(
                static_cast<std::uint64_t>(options.max_storms) + 1))
          : 0;
  for (int i = 0; i < nstorms; ++i) {
    std::uint64_t from = at();
    std::uint64_t to = at();
    if (from > to) std::swap(from, to);
    if (from == to) to = from + 1;
    plan.storm(from, to,
               static_cast<std::uint32_t>(
                   rng.range(options.min_storm_rate_millionths,
                             options.max_storm_rate_millionths)));
  }

  // Degraded-register windows on the attached cells. Transient windows
  // close inside the event window; a permanent one must be a Jam (the
  // conformance checker refuses to judge completions under it -- any
  // other permanent fault would just make the suffix unjudgeable noise).
  const int nregfaults =
      options.max_reg_faults > 0
          ? static_cast<int>(rng.below(
                static_cast<std::uint64_t>(options.max_reg_faults) + 1))
          : 0;
  for (int i = 0; i < nregfaults; ++i) {
    registers::RegFaultKind kind;
    if (rng.chance(options.p_reg_jam)) {
      kind = registers::RegFaultKind::Jam;
    } else {
      constexpr registers::RegFaultKind kOther[] = {
          registers::RegFaultKind::Drop, registers::RegFaultKind::Stale,
          registers::RegFaultKind::Flake};
      kind = kOther[rng.below(3)];
    }
    const std::uint64_t t = at();
    std::uint64_t d =
        rng.range(options.min_reg_fault_ns, options.max_reg_fault_ns);
    if (t + d > hi) d = hi > t ? hi - t : 1;
    const bool permanent = kind == registers::RegFaultKind::Jam &&
                           rng.chance(options.p_reg_permanent);
    const std::uint32_t rate =
        kind == registers::RegFaultKind::Jam
            ? 1000000
            : static_cast<std::uint32_t>(rng.range(400000, 950000));
    plan.reg_fault(kind, t,
                   permanent ? RtAbortInjector::kForeverNs : t + d, rate);
  }

  // Membership churn (only bites when the supervisor fires
  // on_membership). Cycles are sequential in time, so the view history
  // per cycle is a clean leave -> rejoin chain (or one replace event).
  // Draws append after every other family, so plans generated with the
  // default max_membership_cycles = 0 replay byte for byte.
  const int ncycles =
      options.nthreads >= 2 && options.max_membership_cycles > 0
          ? static_cast<int>(rng.below(
                static_cast<std::uint64_t>(options.max_membership_cycles) +
                1))
          : 0;
  std::uint64_t mcursor = lo;
  for (int i = 0; i < ncycles; ++i) {
    if (mcursor + 8 >= hi) break;  // no room left in the event window
    const auto tid =
        options.churn_tid >= 0
            ? static_cast<std::uint32_t>(options.churn_tid)
            : static_cast<std::uint32_t>(rng.below(
                  static_cast<std::uint64_t>(options.nthreads)));
    if (rng.chance(options.p_replace)) {
      const std::uint64_t t = rng.range(mcursor, hi - 1);
      plan.replace(tid, tid, t);
      mcursor = t + 1;
    } else {
      const std::uint64_t out_at = rng.range(mcursor, hi - 3);
      const std::uint64_t back = rng.range(out_at + 1, hi - 1);
      plan.leave(tid, out_at);
      plan.join(tid, back);
      mcursor = back + 1;
    }
  }

  // Clock faults (only bite when the supervisor's FaultClock is the
  // thread's time source, which it always is once armed). Draws append
  // after every other family, so plans generated with the default
  // max_clock_faults = 0 replay byte for byte.
  const int nclock =
      options.max_clock_faults > 0
          ? static_cast<int>(rng.below(
                static_cast<std::uint64_t>(options.max_clock_faults) + 1))
          : 0;
  for (int i = 0; i < nclock; ++i) {
    const auto tid =
        options.clock_tid >= 0
            ? static_cast<std::uint32_t>(options.clock_tid)
            : static_cast<std::uint32_t>(rng.below(
                  static_cast<std::uint64_t>(options.nthreads)));
    constexpr RtClockFaultKind kKinds[] = {
        RtClockFaultKind::Skew, RtClockFaultKind::Drift,
        RtClockFaultKind::JumpForward, RtClockFaultKind::JumpBackward,
        RtClockFaultKind::Freeze};
    const RtClockFaultKind kind = kKinds[rng.below(5)];
    const std::uint64_t t = at();
    std::uint64_t d =
        rng.range(options.min_clock_fault_ns, options.max_clock_fault_ns);
    if (t + d > hi) d = hi > t ? hi - t : 1;
    const bool permanent = (kind == RtClockFaultKind::Skew ||
                            kind == RtClockFaultKind::Drift) &&
                           rng.chance(options.p_clock_permanent);
    std::int64_t magnitude = 0;
    switch (kind) {
      case RtClockFaultKind::Skew:
        magnitude = static_cast<std::int64_t>(rng.range(
            options.min_clock_skew_ns, options.max_clock_skew_ns));
        if (rng.chance(0.5)) magnitude = -magnitude;
        break;
      case RtClockFaultKind::Drift:
        magnitude = static_cast<std::int64_t>(rng.range(
            options.min_clock_drift_ppm, options.max_clock_drift_ppm));
        if (rng.chance(0.5)) magnitude = -magnitude;
        break;
      case RtClockFaultKind::JumpForward:
        magnitude = static_cast<std::int64_t>(rng.range(
            options.min_clock_skew_ns, options.max_clock_skew_ns));
        break;
      case RtClockFaultKind::JumpBackward:
        magnitude = -static_cast<std::int64_t>(rng.range(
            options.min_clock_skew_ns, options.max_clock_skew_ns));
        break;
      case RtClockFaultKind::Freeze:
        break;
    }
    plan.clock_fault(kind, tid, t,
                     permanent ? RtClockFaultEvent::kForeverNs : t + d,
                     magnitude);
  }

  // Never return an empty plan: a sweep case with nothing to inject
  // would silently test nothing. Default to a mid-window stall.
  if (plan.empty()) {
    const auto tid = static_cast<std::uint32_t>(
        rng.below(static_cast<std::uint64_t>(options.nthreads)));
    plan.stall(tid, at(),
               rng.range(options.min_stall_ns, options.max_stall_ns));
  }
  return plan;
}

std::uint64_t RtFaultPlan::last_event_ns() const {
  std::uint64_t last = 0;
  for (const auto& k : kills_) {
    last = std::max(last, k.at_ns + k.restart_after_ns);
  }
  for (const auto& s : stalls_) {
    last = std::max(last, s.at_ns + s.duration_ns);
  }
  for (const auto& s : storms_) last = std::max(last, s.to_ns);
  for (const auto& f : reg_faults_) {
    // A permanent fault never closes: its start is the boundary, the
    // degradation itself is part of the stable suffix.
    last = std::max(last, f.to_ns == RtAbortInjector::kForeverNs
                              ? f.from_ns
                              : f.to_ns);
  }
  for (const auto& ev : membership_) last = std::max(last, ev.at);
  for (const auto& c : clock_faults_) {
    // A permanent clock fault never closes: its start is the boundary,
    // the distortion itself is part of the stable suffix.
    last = std::max(last, c.to_ns == RtClockFaultEvent::kForeverNs
                              ? c.from_ns
                              : c.to_ns);
  }
  return last;
}

bool RtFaultPlan::clock_faulted_in(std::uint32_t tid, std::uint64_t from_ns,
                                   std::uint64_t to_ns) const {
  constexpr std::uint64_t kForever = RtClockFaultEvent::kForeverNs;
  for (const auto& c : clock_faults_) {
    if (c.tid != tid) continue;
    // Worst-case distortion reach: how far outside the window the
    // faulted clock can stamp an event.
    std::uint64_t reach = 0;
    switch (c.kind) {
      case RtClockFaultKind::Skew:
      case RtClockFaultKind::JumpForward:
      case RtClockFaultKind::JumpBackward:
        reach = static_cast<std::uint64_t>(
            c.magnitude < 0 ? -c.magnitude : c.magnitude);
        break;
      case RtClockFaultKind::Drift: {
        if (c.to_ns == kForever) break;  // permanent: forward reach moot
        const std::uint64_t span = c.to_ns - c.from_ns;
        const auto mag = static_cast<std::uint64_t>(
            c.magnitude < 0 ? -c.magnitude : c.magnitude);
        reach = span / 1000000 * mag + span % 1000000 * mag / 1000000;
        break;
      }
      case RtClockFaultKind::Freeze:
        reach = c.to_ns == kForever ? 0 : c.to_ns - c.from_ns;
        break;
    }
    const std::uint64_t eff_from =
        c.from_ns > reach ? c.from_ns - reach : 0;
    const std::uint64_t eff_to =
        c.to_ns == kForever || c.to_ns + reach < c.to_ns  // saturate
            ? kForever
            : c.to_ns + reach;
    if (eff_from < to_ns && eff_to > from_ns) return true;
  }
  return false;
}

std::vector<core::EpochWindow> RtFaultPlan::epoch_timeline(
    int nthreads, std::uint64_t run_end_ns) const {
  return core::epoch_windows(nthreads, membership_, run_end_ns);
}

bool RtFaultPlan::member_at_end(int nthreads, std::uint32_t tid) const {
  const auto windows =
      epoch_timeline(nthreads, /*run_end_ns=*/last_event_ns() + 1);
  const auto& final_members = windows.back().members;
  return static_cast<int>(tid) < nthreads && final_members[tid];
}

bool RtFaultPlan::jam_covers(std::uint64_t from_ns,
                             std::uint64_t to_ns) const {
  return std::any_of(
      reg_faults_.begin(), reg_faults_.end(), [&](const RtRegFaultEvent& f) {
        return f.kind == registers::RegFaultKind::Jam &&
               f.from_ns <= from_ns &&
               (f.to_ns == RtAbortInjector::kForeverNs || f.to_ns >= to_ns);
      });
}

bool RtFaultPlan::killed_at_end(std::uint32_t tid) const {
  // With at most one permanent kill per tid (see generate) and restarts
  // encoded on the kill itself, "killed at end" is simply "has a kill
  // with no restart".
  return std::any_of(kills_.begin(), kills_.end(), [&](const RtKill& k) {
    return k.tid == tid && k.restart_after_ns == 0;
  });
}

std::vector<RtAbortInjector::Window> RtFaultPlan::storm_windows() const {
  std::vector<RtAbortInjector::Window> windows;
  windows.reserve(storms_.size());
  for (const auto& s : storms_) {
    windows.push_back({s.from_ns, s.to_ns, s.rate_millionths,
                       registers::RegFaultKind::Flake});
  }
  return windows;
}

std::vector<RtAbortInjector::Window> RtFaultPlan::fault_windows() const {
  std::vector<RtAbortInjector::Window> windows = storm_windows();
  windows.reserve(windows.size() + reg_faults_.size());
  for (const auto& f : reg_faults_) {
    windows.push_back({f.from_ns, f.to_ns, f.rate_millionths, f.kind});
  }
  return windows;
}

std::string RtFaultPlan::summary() const {
  std::ostringstream out;
  out << "rt plan seed=" << seed_ << "\n";
  for (const auto& k : kills_) {
    out << "  kill t" << k.tid << " at=" << k.at_ns << "ns";
    if (k.restart_after_ns > 0) {
      out << " restart +" << k.restart_after_ns << "ns";
    } else {
      out << " (permanent)";
    }
    out << "\n";
  }
  for (const auto& s : stalls_) {
    out << "  stall t" << s.tid << " at=" << s.at_ns << "ns for "
        << s.duration_ns << "ns\n";
  }
  for (const auto& s : storms_) {
    out << "  storm [" << s.from_ns << ", " << s.to_ns << ")ns rate="
        << s.rate_millionths << "ppm\n";
  }
  for (const auto& f : reg_faults_) {
    out << "  regfault " << registers::to_string(f.kind) << " ["
        << f.from_ns << ", ";
    if (f.to_ns == RtAbortInjector::kForeverNs) {
      out << "forever";
    } else {
      out << f.to_ns;
    }
    out << ")ns rate=" << f.rate_millionths << "ppm\n";
  }
  for (const auto& ev : membership_) {
    out << "  view " << core::describe(ev) << "ns\n";
  }
  for (const auto& c : clock_faults_) {
    out << "  clock " << to_string(c.kind) << " t" << c.tid << " ["
        << c.from_ns << ", ";
    if (c.to_ns == RtClockFaultEvent::kForeverNs) {
      out << "forever";
    } else {
      out << c.to_ns;
    }
    out << ")ns mag=" << c.magnitude
        << (c.kind == RtClockFaultKind::Drift ? "ppm" : "ns") << "\n";
  }
  if (empty()) out << "  (empty)\n";
  return out.str();
}

}  // namespace tbwf::rt
