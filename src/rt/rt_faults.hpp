// RtFaultPlan: a declarative, seed-replayable timeline of real-thread
// faults -- the rt twin of sim::FaultPlan.
//
// The simulator injects faults at exact global steps; real threads have
// no global step, so rt faults anchor on wall-clock offsets from the
// supervisor's run origin and fire at the worker's next cooperative
// fault point (RtWorkerContext::fault_point). Three fault kinds:
//
//   - Kill{tid, at_ns, restart_after_ns}: the worker thread dies at its
//     first fault point past at_ns (mid-operation if the workload puts
//     fault points inside its operations); if restart_after_ns > 0 the
//     supervisor revives it that much later with a fresh incarnation --
//     local state lost, shared objects keep their values, mirroring
//     World::restart;
//   - Stall{tid, at_ns, duration_ns}: the worker sleeps through the
//     window, destroying its timeliness exactly there (the rt analogue
//     of a StutterPhase);
//   - Storm{from_ns, to_ns, rate}: every RtAbortableReg attached to the
//     supervisor's RtAbortInjector aborts operations with probability
//     `rate` inside the window (the rt analogue of an AbortStorm);
//   - RegFault{kind, from_ns, to_ns, rate}: a degraded-register window
//     on the attached cells -- jams (every op aborts, solo included,
//     possibly forever), silent drops, stale serves -- the rt analogue
//     of a sim LinkFaultEvent. A jam that covers the stable suffix
//     makes the run unjudgeable for completions: check_rt_conformance
//     then awards no guarantee instead of a wait-free verdict the
//     jammed medium never earned.
//
// generate() draws a random but deterministic plan from a seed; a red
// sweep case replays from the seed alone (the *plan* is exact; the
// thread interleaving is whatever the OS does, which is the point of
// the rt harness). Plans keep a quiet tail so the conformance checker
// has a stable suffix to judge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/membership.hpp"
#include "rt/rt_clock.hpp"
#include "rt/rt_registers.hpp"

namespace tbwf::rt {

/// Thrown by RtWorkerContext::fault_point when a Kill fires; the
/// supervisor's thread wrapper catches it and marks the worker dead.
/// Workloads must let it propagate (catch nothing, or rethrow).
struct WorkerKilled {
  std::uint32_t tid = 0;
};

struct RtKill {
  std::uint32_t tid = 0;
  std::uint64_t at_ns = 0;
  std::uint64_t restart_after_ns = 0;  ///< 0 = never restarted
};

struct RtStall {
  std::uint32_t tid = 0;
  std::uint64_t at_ns = 0;
  std::uint64_t duration_ns = 0;
};

struct RtStorm {
  std::uint64_t from_ns = 0;
  std::uint64_t to_ns = 0;
  std::uint32_t rate_millionths = 1000000;
};

/// A degraded-register window on every attached cell; to_ns ==
/// RtAbortInjector::kForeverNs never closes.
struct RtRegFaultEvent {
  registers::RegFaultKind kind = registers::RegFaultKind::Jam;
  std::uint64_t from_ns = 0;
  std::uint64_t to_ns = 0;
  std::uint32_t rate_millionths = 1000000;
};

class RtFaultPlan {
 public:
  RtFaultPlan() = default;
  explicit RtFaultPlan(std::uint64_t seed) : seed_(seed) {}

  // -- builders ---------------------------------------------------------------
  RtFaultPlan& kill(std::uint32_t tid, std::uint64_t at_ns,
                    std::uint64_t restart_after_ns = 0);
  RtFaultPlan& stall(std::uint32_t tid, std::uint64_t at_ns,
                     std::uint64_t duration_ns);
  RtFaultPlan& storm(std::uint64_t from_ns, std::uint64_t to_ns,
                     std::uint32_t rate_millionths);
  RtFaultPlan& reg_fault(registers::RegFaultKind kind, std::uint64_t from_ns,
                         std::uint64_t to_ns,
                         std::uint32_t rate_millionths = 1000000);
  /// Membership events (epoch-based reconfiguration): each bumps the
  /// view epoch at `at_ns` (fired from the supervisor's monitor loop
  /// through RtSupervisorOptions::on_membership).
  RtFaultPlan& join(std::uint32_t tid, std::uint64_t at_ns);
  RtFaultPlan& leave(std::uint32_t tid, std::uint64_t at_ns);
  RtFaultPlan& replace(std::uint32_t out, std::uint32_t in,
                       std::uint64_t at_ns);
  /// Clock-fault window on one thread's perceived time (applied by the
  /// supervisor's FaultClock; see rt_clock.hpp for the distortion
  /// semantics). `magnitude` is signed ns for skew/jumps, signed ppm
  /// for drift, ignored for freeze.
  RtFaultPlan& clock_fault(RtClockFaultKind kind, std::uint32_t tid,
                           std::uint64_t from_ns, std::uint64_t to_ns,
                           std::int64_t magnitude);

  // -- random generation --------------------------------------------------------
  struct GenOptions {
    int nthreads = 4;
    /// Events are drawn inside [horizon * 0.05, horizon * (1 - quiet_tail)].
    std::uint64_t horizon_ns = 24000000;  // 24 ms
    /// Last fraction of the horizon kept event-free: the stable tail the
    /// conformance checker asserts the graded guarantees over.
    double quiet_tail = 0.4;
    int max_kills = 2;
    double p_restart = 0.75;  ///< chance a kill is followed by a restart
    int max_stalls = 2;
    std::uint64_t min_stall_ns = 500000;   // 0.5 ms
    std::uint64_t max_stall_ns = 4000000;  // 4 ms
    int max_storms = 1;
    std::uint32_t min_storm_rate_millionths = 300000;
    std::uint32_t max_storm_rate_millionths = 950000;
    /// Unless set, one thread is kept free of permanent kills so the
    /// run always has a survivor.
    bool allow_kill_all = false;
    /// Degraded-register windows, all off by default: plans generated
    /// without them are unchanged draw for draw, so existing seeds
    /// replay byte for byte.
    int max_reg_faults = 0;
    /// Chance a reg fault is a Jam (the rest split evenly over Drop,
    /// Stale and Flake; Torn degrades to Drop on the single-word cell).
    double p_reg_jam = 0.5;
    /// Chance a reg-fault window never closes (kForeverNs). Only jams
    /// are left permanent -- a permanent sub-unity-rate fault would
    /// deny the conformance checker any sound stable suffix.
    double p_reg_permanent = 0.25;
    std::uint64_t min_reg_fault_ns = 1000000;  // 1 ms
    std::uint64_t max_reg_fault_ns = 6000000;  // 6 ms
    /// Membership churn, off by default: plans generated without it are
    /// unchanged draw for draw (membership draws append after every
    /// other family), so existing seeds replay byte for byte. Each
    /// cycle removes `churn_tid` from the view and re-admits it (or,
    /// with p_replace, swaps the seat in one replace event).
    int max_membership_cycles = 0;
    /// Tid the generated churn targets; -1 draws one per cycle.
    int churn_tid = -1;
    /// Chance a cycle is a single replace event instead of leave+join.
    double p_replace = 0.25;
    /// Clock faults, off by default: plans generated without them are
    /// unchanged draw for draw (clock draws append after every other
    /// family), so existing seeds replay byte for byte.
    int max_clock_faults = 0;
    /// Tid whose clock the generated faults distort; -1 draws one per
    /// fault.
    int clock_tid = -1;
    std::uint64_t min_clock_fault_ns = 1000000;  // 1 ms
    std::uint64_t max_clock_fault_ns = 6000000;  // 6 ms
    /// Skew and jump magnitudes (ns) are drawn in this band, the sign
    /// split evenly (jumps fix their sign by kind).
    std::uint64_t min_clock_skew_ns = 200000;   // 0.2 ms
    std::uint64_t max_clock_skew_ns = 4000000;  // 4 ms
    /// Drift rates (ppm) drawn in this band, sign split evenly.
    std::uint64_t min_clock_drift_ppm = 20000;   // 2%
    std::uint64_t max_clock_drift_ppm = 200000;  // 20%
    /// Chance a clock fault never closes. Only Skew and Drift are left
    /// permanent -- a permanent jump is a skew, a permanent freeze
    /// would deny the thread any clock at all.
    double p_clock_permanent = 0.25;
  };

  /// Deterministic: the same (seed, options) always yields the same plan.
  static RtFaultPlan generate(std::uint64_t seed, const GenOptions& options);

  // -- introspection ------------------------------------------------------------
  std::uint64_t seed() const { return seed_; }
  const std::vector<RtKill>& kills() const { return kills_; }
  const std::vector<RtStall>& stalls() const { return stalls_; }
  const std::vector<RtStorm>& storms() const { return storms_; }
  const std::vector<RtRegFaultEvent>& reg_faults() const { return reg_faults_; }
  const std::vector<core::MembershipEvent>& membership() const {
    return membership_;
  }
  const std::vector<RtClockFaultEvent>& clock_faults() const {
    return clock_faults_;
  }
  bool empty() const {
    return kills_.empty() && stalls_.empty() && storms_.empty() &&
           reg_faults_.empty() && membership_.empty() &&
           clock_faults_.empty();
  }

  /// Offset of the last event boundary (kill, restart, stall end, storm
  /// end, membership event, finite reg-fault or clock-fault end; a
  /// permanent reg/clock fault contributes its start); 0 for an empty
  /// plan. Everything after is the stable tail.
  std::uint64_t last_event_ns() const;

  /// True iff a clock fault on `tid` can distort timestamps inside
  /// [from_ns, to_ns). Windows are extended by their worst-case
  /// distortion reach on both sides: a +3 ms skew window stamps events
  /// up to 3 ms past its close, a freeze stamps them up to its whole
  /// duration before it. Conformance uses this to void timely verdicts
  /// a faulted clock cannot earn (and excuse blame it cannot carry).
  bool clock_faulted_in(std::uint32_t tid, std::uint64_t from_ns,
                        std::uint64_t to_ns) const;

  /// Epoch timeline for a run of nthreads ending at run_end_ns: one
  /// window per view, everyone a member of epoch 0.
  std::vector<core::EpochWindow> epoch_timeline(
      int nthreads, std::uint64_t run_end_ns) const;

  /// True iff tid is in the view the plan leaves in force at the end of
  /// the run (non-members are not graded for progress).
  bool member_at_end(int nthreads, std::uint32_t tid) const;

  /// True iff the plan kills tid without a restart.
  bool killed_at_end(std::uint32_t tid) const;

  /// True iff a Jam reg fault covers all of [from_ns, to_ns): the
  /// attached registers serve nothing there, so no completion guarantee
  /// can be earned or demanded.
  bool jam_covers(std::uint64_t from_ns, std::uint64_t to_ns) const;

  /// The plan's storm windows in RtAbortInjector form.
  std::vector<RtAbortInjector::Window> storm_windows() const;

  /// Every injector window: storms (as Flake) plus reg faults. Arm the
  /// supervisor's injector with this to get the full degraded medium.
  std::vector<RtAbortInjector::Window> fault_windows() const;

  /// Human-readable one-per-line event list (starts with the seed).
  std::string summary() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<RtKill> kills_;
  std::vector<RtStall> stalls_;
  std::vector<RtStorm> storms_;
  std::vector<RtRegFaultEvent> reg_faults_;
  std::vector<core::MembershipEvent> membership_;
  std::vector<RtClockFaultEvent> clock_faults_;
};

}  // namespace tbwf::rt
