// RtTrace: lock-free, per-thread ring buffers of timestamped runtime
// events -- the rt analogue of sim::Trace.
//
// The simulator owns a global step counter, so its trace is a simple
// append log. Real threads have no global step, so each worker writes
// timestamped events into its OWN fixed-capacity ring (single writer,
// no locks, one release store per event); the supervisor snapshots all
// rings once the workers have quiesced (joined), which is the only
// moment a reader may look. The conformance checker re-derives realized
// timeliness, completions and re-election latency from the merged,
// time-sorted event stream -- wall-clock nanoseconds play the role the
// global step counter plays in the step model (docs/FAULTS.md §7).
//
// Rings overwrite oldest entries when full; `dropped` in the snapshot
// says how many events fell off the front of each ring, so a checker can
// refuse to judge a window it cannot see.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

enum class RtEventKind : std::uint8_t {
  kStep,              ///< liveness tick (the worker is scheduled and running)
  kOpStart,           ///< an application-level operation was invoked
  kOpComplete,        ///< ... and took effect (arg = op payload, if any)
  kAbort,             ///< a base-register operation aborted (cell busy / storm)
  kLeaseAcquire,      ///< won the lease (arg = fence token)
  kLeaseRelease,      ///< released the lease voluntarily
  kStaleFenceBlocked, ///< a commit was refused because the fence moved
  kKill,              ///< the worker died at a cooperative kill point
  kStall,             ///< the worker entered a stall window (arg = ns)
  kRestart,           ///< a fresh incarnation re-joined (arg = incarnation)
};

struct RtEvent {
  std::uint64_t at_ns = 0;  ///< since the supervisor's run origin
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;
  std::uint32_t incarnation = 0;
  RtEventKind kind = RtEventKind::kStep;
};

/// Post-run view of the trace: per-thread event vectors (time-ordered by
/// construction -- each ring has a single writer) plus drop counts.
struct RtTraceSnapshot {
  std::vector<std::vector<RtEvent>> per_tid;
  std::vector<std::uint64_t> dropped;
  std::uint64_t run_end_ns = 0;  ///< largest timestamp seen (0 if empty)

  int n() const { return static_cast<int>(per_tid.size()); }

  /// All events of every thread merged and sorted by timestamp.
  std::vector<RtEvent> merged() const {
    std::vector<RtEvent> all;
    std::size_t total = 0;
    for (const auto& v : per_tid) total += v.size();
    all.reserve(total);
    for (const auto& v : per_tid) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end(),
              [](const RtEvent& a, const RtEvent& b) {
                return a.at_ns < b.at_ns ||
                       (a.at_ns == b.at_ns && a.tid < b.tid);
              });
    return all;
  }
};

class RtTrace {
 public:
  /// `capacity` is rounded up to a power of two, per thread.
  explicit RtTrace(int nthreads, std::size_t capacity = 1 << 14)
      : rings_(static_cast<std::size_t>(nthreads)) {
    TBWF_ASSERT(nthreads >= 1, "need at least one thread");
    cap_ = 1;
    while (cap_ < capacity) cap_ <<= 1;
    mask_ = cap_ - 1;
    for (auto& ring : rings_) {
      ring.slots = std::make_unique<RtEvent[]>(cap_);
    }
  }

  /// Record one event for `tid`. Wait-free: one slot write and one
  /// release store. Must be called only by tid's current worker thread
  /// (or by the supervisor while that worker is provably not running --
  /// dead and joined, or not yet spawned).
  void record(std::uint32_t tid, std::uint32_t incarnation, RtEventKind kind,
              std::uint64_t at_ns, std::uint64_t arg = 0) {
    Ring& ring = rings_[tid];
    // relaxed self-read: head is written only by this ring's single
    // writer, so the load needs no synchronization at all.
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    RtEvent& slot = ring.slots[head & mask_];
    slot.at_ns = at_ns;
    slot.arg = arg;
    slot.tid = tid;
    slot.incarnation = incarnation;
    slot.kind = kind;
    // release publishes the slot: snapshot()'s acquire load of head
    // (after join) is the consume edge that makes the event visible.
    ring.head.store(head + 1, std::memory_order_release);
  }

  /// Copy out every ring. Quiescent-only: all writers must have been
  /// joined (or otherwise happen-before this call) -- the rings are not
  /// seqlocked, a concurrent writer would tear the copy.
  RtTraceSnapshot snapshot() const {
    RtTraceSnapshot snap;
    snap.per_tid.resize(rings_.size());
    snap.dropped.resize(rings_.size(), 0);
    for (std::size_t t = 0; t < rings_.size(); ++t) {
      const Ring& ring = rings_[t];
      // acquire pairs with record()'s release store: every slot filled
      // before the last published head is visible to this copy.
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(head, cap_);
      snap.dropped[t] = head - kept;
      auto& out = snap.per_tid[t];
      out.reserve(kept);
      for (std::uint64_t i = head - kept; i < head; ++i) {
        out.push_back(ring.slots[i & mask_]);
        snap.run_end_ns = std::max(snap.run_end_ns, out.back().at_ns);
      }
    }
    return snap;
  }

  int n() const { return static_cast<int>(rings_.size()); }
  std::size_t capacity() const { return cap_; }

 private:
  /// One line per ring: each head is bumped at event rate by its single
  /// writer; sharing a line across tids would serialize the writers.
  struct alignas(util::kCacheLineSize) Ring {
    std::unique_ptr<RtEvent[]> slots;
    std::atomic<std::uint64_t> head{0};
  };

  std::vector<Ring> rings_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace tbwf::rt
