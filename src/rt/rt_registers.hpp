// Real-threads backend: abortable registers over std::atomic.
//
// The simulator (src/sim) is the faithful reproduction vehicle -- it
// controls steps, timeliness and abort adversaries exactly. This rt
// backend exists for the wall-clock benchmark (E11): it runs the same
// *ideas* on real threads to show the practical cost profile.
//
// RtAbortableReg implements the abortable-register contract with a
// try-lock cell: an operation that cannot acquire the cell immediately
// was, by construction, concurrent with another operation and aborts;
// an operation that acquires the cell runs alone and succeeds. Solo
// operations therefore never abort, and aborted writes never take
// effect (one of the behaviours the spec allows).
// Memory-order discipline (see docs/MODEL.md, "The rt memory model"):
// every atomic operation in this backend names its order explicitly.
// The orders fall into three documented roles:
//
//   acquire/release  publication edges -- the try-lock cell that guards
//                    value_/prev_value_, and the injector pointer
//                    handoff (arm() data must be visible to fire());
//   relaxed          monotone statistics (draw indices, injected-fault
//                    tallies, heartbeat counters): no reader infers
//                    anything from their ordering, only from their
//                    eventual value, and the supervisor's thread join
//                    provides the final happens-before for exact reads.
//
// Per-thread and per-cell hot counters are cache-line-isolated
// (util/cacheline.hpp) so one thread's relaxed bumps do not invalidate
// another thread's line.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "registers/reg_faults.hpp"
#include "rt/rt_clock.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

/// What an RtAbortInjector window did to the current operation.
enum class RtRegFault : std::uint8_t {
  None,   ///< no window open / rate missed: the cell decides
  Abort,  ///< the operation aborts (jam or flake)
  Drop,   ///< a write reports success but the register keeps its value
  Stale,  ///< a read reports success but returns the previous value
};

/// Fault injector for RtAbortableReg: the rt twin of the simulator's
/// PhasedAbortPolicy storms AND RegisterFaultInjector windows. Each
/// armed wall-clock window carries a registers::RegFaultKind:
///
///   Flake  operations abort with the window's rate, as if a phantom
///          concurrent operation held the cell (the classic storm);
///   Jam    every operation aborts, solo included, rate ignored -- a
///          degraded register, beyond the abortable spec;
///   Drop   a write reports success but never lands;
///   Stale  a read reports success but serves the previous value;
///   Torn   the rt cell is a single word, so a torn write cannot leave
///          a half-updated value -- it degrades to Drop here.
///
/// Flake windows are confined to fault windows that end before the
/// stable suffix the conformance checker judges (solo-never-aborts
/// holds whenever no window is open); a Jam window MAY cover the
/// suffix, in which case check_rt_conformance refuses to award any
/// completion guarantee for it (RtFaultPlan::jam_covers).
///
/// Decisions are drawn from a seeded counter hash, so two runs with the
/// same seed and the same per-register operation order make the same
/// calls. arm() must happen-before any concurrent fire().
class RtAbortInjector {
 public:
  struct Window {
    std::uint64_t from_ns = 0;  ///< relative to the armed origin
    std::uint64_t to_ns = 0;    ///< kForeverNs never closes
    std::uint32_t rate_millionths = 1000000;  ///< firing probability * 1e6
    registers::RegFaultKind kind = registers::RegFaultKind::Flake;
  };

  static constexpr std::uint64_t kForeverNs = ~0ULL;

  RtAbortInjector() = default;

  /// Install fault windows. `origin_ns` anchors the relative window
  /// bounds on the steady clock (pass the supervisor's run origin).
  void arm(std::uint64_t seed, std::uint64_t origin_ns,
           std::vector<Window> windows) {
    seed_ = seed;
    origin_ns_ = origin_ns;
    windows_ = std::move(windows);
  }

  /// What does the first open window that fires do to the current
  /// operation? Jam fires without a draw; everything else consults the
  /// window rate. Windows that cannot touch the operation direction
  /// (Drop/Torn a read, Stale a write) are skipped.
  RtRegFault fire_op(bool is_write) {
    if (windows_.empty()) return RtRegFault::None;
    // Window position is judged on the calling thread's perceived
    // clock (FaultClock::read): a clock-faulted worker sees register
    // fault windows shifted exactly as it sees everything else.
    const std::uint64_t now = FaultClock::read() - origin_ns_;
    for (const auto& w : windows_) {
      if (now < w.from_ns || (w.to_ns != kForeverNs && now >= w.to_ns)) {
        continue;
      }
      switch (w.kind) {
        case registers::RegFaultKind::Jam:
          return note(RtRegFault::Abort, w.kind);
        case registers::RegFaultKind::Drop:
        case registers::RegFaultKind::Torn:
          if (!is_write) continue;
          break;
        case registers::RegFaultKind::Stale:
          if (is_write) continue;
          break;
        case registers::RegFaultKind::Flake:
          break;
      }
      if (!draw(w.rate_millionths)) continue;
      if (w.kind == registers::RegFaultKind::Stale) {
        return note(RtRegFault::Stale, w.kind);
      }
      if (w.kind == registers::RegFaultKind::Flake) {
        return note(RtRegFault::Abort, w.kind);
      }
      return note(RtRegFault::Drop, w.kind);  // Drop, and Torn as Drop
    }
    return RtRegFault::None;
  }

  /// Storm-compat shim: should the operation abort? (Reads: also maps
  /// stale serves to aborts -- only fire_op callers can serve stale.)
  bool fire() { return fire_op(/*is_write=*/false) != RtRegFault::None; }

  std::uint64_t injected() const {
    return injected_->load(std::memory_order_relaxed);
  }
  /// Ground truth per fault kind, for judging detectors against.
  std::uint64_t injected(registers::RegFaultKind kind) const {
    return injected_by_[static_cast<int>(kind)]->load(
        std::memory_order_relaxed);
  }

 private:
  /// SplitMix64 of (seed, draw index): uniform and replayable per seed.
  bool draw(std::uint32_t rate_millionths) {
    std::uint64_t z =
        seed_ + 0x9E3779B97F4A7C15ULL *
                    (draws_->fetch_add(1, std::memory_order_relaxed) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return z % 1000000 < rate_millionths;
  }
  RtRegFault note(RtRegFault fault, registers::RegFaultKind kind) {
    injected_->fetch_add(1, std::memory_order_relaxed);
    injected_by_[static_cast<int>(kind)]->fetch_add(
        1, std::memory_order_relaxed);
    return fault;
  }

  std::uint64_t seed_ = 0;
  std::uint64_t origin_ns_ = 0;
  std::vector<Window> windows_;
  /// All three tallies are relaxed monotone counters: draws_ orders the
  /// seeded hash sequence (any serialization of the fetch_adds is an
  /// acceptable draw order), injected_* are statistics read either
  /// relaxed (approximate, mid-run) or after join (exact). Each lives on
  /// its own cache line: draws_ is hammered by every faulted operation
  /// of every thread, and sharing a line would stall the injector-free
  /// fast path of neighbouring cells.
  util::CachelinePadded<std::atomic<std::uint64_t>> draws_{0};
  util::CachelinePadded<std::atomic<std::uint64_t>> injected_{0};
  util::CachelinePadded<std::atomic<std::uint64_t>>
      injected_by_[registers::kRegFaultKinds] = {};
};

/// Cache-line-aligned so registers packed in arrays (one per process,
/// as in RtQaUniversal) never share a line: the try-lock CAS of one
/// cell must not steal the line under a neighbouring cell's reader.
/// lock_ and the values it guards deliberately stay TOGETHER on the
/// line -- an operation always touches both, so splitting them would
/// double the line transfers per op.
template <class T>
class alignas(util::kCacheLineSize) RtAbortableReg {
 public:
  explicit RtAbortableReg(T initial)
      : value_(initial), prev_value_(std::move(initial)) {}

  /// Subject this register to injected faults (nullptr detaches).
  /// The injector must outlive the register's last operation.
  void set_injector(RtAbortInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Returns nullopt iff the read aborted (cell busy, flake or jam).
  /// Inside a Stale window the read succeeds but serves the value the
  /// register held before its last successful write.
  std::optional<T> read() {
    const RtRegFault fault = consult(/*is_write=*/false);
    if (fault == RtRegFault::Abort) return std::nullopt;
    if (!try_acquire()) return std::nullopt;
    // prev_value_ is only touched under the cell lock: stale serves stay
    // data-race-free even though they bypass the current value.
    T copy = fault == RtRegFault::Stale ? prev_value_ : value_;
    release();
    return copy;
  }

  /// Returns false iff the write aborted (cell busy, flake or jam; no
  /// effect). Inside a Drop window the write reports true but the
  /// register keeps its value -- the caller has no way to notice.
  bool write(const T& v) {
    const RtRegFault fault = consult(/*is_write=*/true);
    if (fault == RtRegFault::Abort) return false;
    if (!try_acquire()) return false;
    if (fault != RtRegFault::Drop) {
      prev_value_ = value_;
      value_ = v;
    }
    release();
    return true;
  }

 private:
  RtRegFault consult(bool is_write) {
    // acquire pairs with set_injector's release: observing the pointer
    // implies observing the windows armed before it was attached.
    RtAbortInjector* inj = injector_.load(std::memory_order_acquire);
    return inj != nullptr ? inj->fire_op(is_write) : RtRegFault::None;
  }
  bool try_acquire() {
    // acquire on success pairs with release(): the winner sees every
    // value_/prev_value_ write of the previous holder. Failure needs no
    // ordering -- the op aborts without looking at the guarded data.
    std::uint32_t expected = 0;
    return lock_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }
  // release publishes the critical section to the next try_acquire.
  void release() { lock_.store(0, std::memory_order_release); }

  std::atomic<std::uint32_t> lock_{0};
  std::atomic<RtAbortInjector*> injector_{nullptr};
  T value_;
  T prev_value_;
};

/// Single-writer heartbeat slot: the writer publishes a monotonically
/// increasing counter; readers detect activity and staleness. Trivial
/// over std::atomic, provided for symmetry with the simulator's
/// monitored/monitoring split.
class RtHeartbeat {
 public:
  /// relaxed: the counter is a pure monotone activity signal. A reader
  /// learns "the writer took a step" from the VALUE advancing; no other
  /// data is published through it, so no release edge is needed, and
  /// staleness only delays (never fakes) an activity judgment.
  void beat() { counter_->fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return counter_->load(std::memory_order_relaxed);
  }

 private:
  /// Own line: heartbeats placed in per-process arrays are each bumped
  /// at step rate by their owner; sharing a line would make every beat
  /// a cross-core invalidation for the monitors polling the others.
  util::CachelinePadded<std::atomic<std::uint64_t>> counter_{0};
};

}  // namespace tbwf::rt
