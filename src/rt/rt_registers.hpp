// Real-threads backend: abortable registers over std::atomic.
//
// The simulator (src/sim) is the faithful reproduction vehicle -- it
// controls steps, timeliness and abort adversaries exactly. This rt
// backend exists for the wall-clock benchmark (E11): it runs the same
// *ideas* on real threads to show the practical cost profile.
//
// RtAbortableReg implements the abortable-register contract with a
// try-lock cell: an operation that cannot acquire the cell immediately
// was, by construction, concurrent with another operation and aborts;
// an operation that acquires the cell runs alone and succeeds. Solo
// operations therefore never abort, and aborted writes never take
// effect (one of the behaviours the spec allows).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

namespace tbwf::rt {

template <class T>
class RtAbortableReg {
 public:
  explicit RtAbortableReg(T initial) : value_(std::move(initial)) {}

  /// Returns nullopt iff the read aborted (cell busy).
  std::optional<T> read() {
    if (!try_acquire()) return std::nullopt;
    T copy = value_;
    release();
    return copy;
  }

  /// Returns false iff the write aborted (cell busy; no effect).
  bool write(const T& v) {
    if (!try_acquire()) return false;
    value_ = v;
    release();
    return true;
  }

 private:
  bool try_acquire() {
    std::uint32_t expected = 0;
    return lock_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }
  void release() { lock_.store(0, std::memory_order_release); }

  std::atomic<std::uint32_t> lock_{0};
  T value_;
};

/// Single-writer heartbeat slot: the writer publishes a monotonically
/// increasing counter; readers detect activity and staleness. Trivial
/// over std::atomic, provided for symmetry with the simulator's
/// monitored/monitoring split.
class RtHeartbeat {
 public:
  void beat() { counter_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace tbwf::rt
