// Real-threads backend: abortable registers over std::atomic.
//
// The simulator (src/sim) is the faithful reproduction vehicle -- it
// controls steps, timeliness and abort adversaries exactly. This rt
// backend exists for the wall-clock benchmark (E11): it runs the same
// *ideas* on real threads to show the practical cost profile.
//
// RtAbortableReg implements the abortable-register contract with a
// try-lock cell: an operation that cannot acquire the cell immediately
// was, by construction, concurrent with another operation and aborts;
// an operation that acquires the cell runs alone and succeeds. Solo
// operations therefore never abort, and aborted writes never take
// effect (one of the behaviours the spec allows).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace tbwf::rt {

/// Abort-storm injector for RtAbortableReg: the rt analogue of the
/// simulator's PhasedAbortPolicy storms. Inside each armed wall-clock
/// window, register operations abort with the window's rate as if a
/// phantom concurrent operation held the cell. From the caller's view
/// this is indistinguishable from real contention; strictly it can hit
/// an operation that runs solo, which the abortable-register spec
/// forbids -- storms are therefore confined to fault windows that end
/// before the stable suffix the conformance checker judges (the
/// solo-never-aborts property holds whenever no storm window is open).
///
/// Decisions are drawn from a seeded counter hash, so two runs with the
/// same seed and the same per-register operation order make the same
/// calls. arm() must happen-before any concurrent fire().
class RtAbortInjector {
 public:
  struct Window {
    std::uint64_t from_ns = 0;  ///< relative to the armed origin
    std::uint64_t to_ns = 0;
    std::uint32_t rate_millionths = 1000000;  ///< abort probability * 1e6
  };

  RtAbortInjector() = default;

  /// Install storm windows. `origin_ns` anchors the relative window
  /// bounds on the steady clock (pass the supervisor's run origin).
  void arm(std::uint64_t seed, std::uint64_t origin_ns,
           std::vector<Window> windows) {
    seed_ = seed;
    origin_ns_ = origin_ns;
    windows_ = std::move(windows);
  }

  /// Should the current register operation be aborted by a storm?
  bool fire() {
    if (windows_.empty()) return false;
    const std::uint64_t now =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count()) -
        origin_ns_;
    const Window* open = nullptr;
    for (const auto& w : windows_) {
      if (now >= w.from_ns && now < w.to_ns) {
        open = &w;
        break;
      }
    }
    if (open == nullptr) return false;
    // SplitMix64 of (seed, draw index): uniform and replayable per seed.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL *
                                  (draws_.fetch_add(1,
                                                    std::memory_order_relaxed) +
                                   1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    if (z % 1000000 >= open->rate_millionths) return false;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t origin_ns_ = 0;
  std::vector<Window> windows_;
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> injected_{0};
};

template <class T>
class RtAbortableReg {
 public:
  explicit RtAbortableReg(T initial) : value_(std::move(initial)) {}

  /// Subject this register to storm-injected aborts (nullptr detaches).
  /// The injector must outlive the register's last operation.
  void set_injector(RtAbortInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Returns nullopt iff the read aborted (cell busy or storm).
  std::optional<T> read() {
    if (storm_fires()) return std::nullopt;
    if (!try_acquire()) return std::nullopt;
    T copy = value_;
    release();
    return copy;
  }

  /// Returns false iff the write aborted (cell busy or storm; no effect).
  bool write(const T& v) {
    if (storm_fires()) return false;
    if (!try_acquire()) return false;
    value_ = v;
    release();
    return true;
  }

 private:
  bool storm_fires() {
    RtAbortInjector* inj = injector_.load(std::memory_order_acquire);
    return inj != nullptr && inj->fire();
  }
  bool try_acquire() {
    std::uint32_t expected = 0;
    return lock_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }
  void release() { lock_.store(0, std::memory_order_release); }

  std::atomic<std::uint32_t> lock_{0};
  std::atomic<RtAbortInjector*> injector_{nullptr};
  T value_;
};

/// Single-writer heartbeat slot: the writer publishes a monotonically
/// increasing counter; readers detect activity and staleness. Trivial
/// over std::atomic, provided for symmetry with the simulator's
/// monitored/monitoring split.
class RtHeartbeat {
 public:
  void beat() { counter_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace tbwf::rt
