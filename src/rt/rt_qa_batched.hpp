// Real-threads batched fast-path/slow-path throughput engine.
//
// The rt twin of src/qa/qa_batched.hpp: announce / combine / help in
// front of RtQaUniversal<BatchSeq<S>>. See that header for the protocol
// and its exactly-once / fate-sealing arguments -- they carry over
// verbatim (the rt construction runs the identical slot protocol over
// try-lock registers). What is rt-specific here:
//
//   * announce cells are RtAbortableReg<Announce>: a combiner's drain
//     read holds the try-lock only for a copy, so the single-writer
//     announce write spins at most briefly; a drain read that aborts
//     skips that announcer for one round (it is helped next round);
//   * waiters do NOT read the n Paxos records per poll (those try-lock
//     reads would duel with the combiner's protocol reads). Instead
//     every decided batch is demultiplexed through an immutable
//     FrontierNode published on one atomic pointer: a waiter's poll is
//     a single hazard-protected load plus three vector lookups;
//   * displaced frontier nodes are reclaimed through HazardDomain
//     (rt_reclaim.hpp): bounded per-thread retire rings, no locks, no
//     unbounded garbage -- live nodes never exceed the
//     live_node_bound() of nthreads * ring_capacity + 2 * nthreads + 1
//     (rings at capacity, one unpublished allocation plus one
//     displaced-awaiting-retire node per thread, the published
//     frontier);
//   * a combiner gate (advisory try-flag) damps slot duels: waiters
//     whose patience expires while another combiner is mid-flight spin
//     briefly before combining anyway. The gate is bounded-bypass, so
//     it can cost at most a constant delay, never progress;
//   * producer LANES are decoupled from combiner identities: the
//     engine has `Options::lanes` announce cells (default nthreads)
//     but only nthreads slot-protocol participants. A thread that owns
//     several lanes pipelines one staged op per lane through
//     announce()/collect(); a single combine round drains every staged
//     lane, so per-op slot cost is amortized across the whole staged
//     set -- the throughput case the paper's batching argument is
//     about (many producers, few combiners).
//
// Memory-order discipline (docs/MODEL.md): every atomic op names its
// order. frontier_ CAS publishes with seq_cst (pairs with the hazard
// validation, see rt_reclaim.hpp); its plain loads are acquire (node
// fields were written before the CAS); the combiner gate is
// acquire/release (advisory mutual-exclusion hint); statistics are
// relaxed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "qa/qa_batched.hpp"
#include "qa/qa_object.hpp"
#include "qa/sequential_type.hpp"
#include "rt/rt_qa.hpp"
#include "rt/rt_reclaim.hpp"
#include "rt/rt_registers.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

template <qa::Sequential S>
class RtQaBatched {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Response = qa::QaResponse<Result>;
  using Tid = std::uint32_t;
  using BS = qa::BatchSeq<S>;
  using Inner = RtQaUniversal<BS>;
  using InnerStateRec = typename Inner::StateRec;

  struct Options {
    /// Frontier polls a waiter grants the combiners before running the
    /// slot protocol itself (helping trigger B).
    int patience = 64;
    /// Polls between cooperative yields while waiting (oversubscribed
    /// cores need the combiner scheduled in).
    int yield_every = 8;
    /// Inner slot attempts in invoke()'s bounded slow path.
    int combine_attempts = 4;
    /// Bounded announce-write retries in invoke() (apply() retries
    /// until the single-writer cell lands).
    int announce_tries = 256;
    /// Spin budget while the advisory combiner gate is taken before
    /// combining anyway (bounded bypass).
    int gate_spins = 64;
    /// Retire-ring capacity per thread (0 = 2 * nthreads + 8).
    std::size_t ring_capacity = 0;
    /// Announce lanes (0 = nthreads). Lanes are producer identities:
    /// each OS thread may own several and pipeline one staged op per
    /// lane through announce()/collect(), all drained by a single
    /// combine round. Only the nthreads combiner identities run the
    /// slot protocol; state width (done_uid et al.) is per lane.
    int lanes = 0;
  };

  /// Patience at or above this disables opportunistic (gate-idle)
  /// combining: the thread combines only when its patience expires.
  /// Starvation tests use it to model a pure waiter that must be
  /// carried entirely by others' helping.
  static constexpr int kNeverCombine = 1 << 24;

  struct Announce {
    std::uint64_t uid = 0;
    bool has_op = false;
    Op op{};
  };

  /// Immutable per-slot demux snapshot; published whole, never mutated.
  struct FrontierNode {
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> done_uid;
    std::vector<std::uint8_t> done_void;
    std::vector<Result> done_result;
  };

  explicit RtQaBatched(int nthreads, State initial = State{},
                       Options options = {})
      : n_(nthreads),
        lanes_(options.lanes > 0 ? options.lanes : nthreads),
        options_(options),
        inner_(nthreads, make_genesis(lanes_, std::move(initial))),
        domain_(nthreads, options.ring_capacity),
        locals_(nthreads),
        lane_slots_(lanes_) {
    TBWF_ASSERT(nthreads >= 1, "need at least one thread");
    TBWF_ASSERT(lanes_ >= nthreads,
                "each thread needs at least its default lane (lane == tid)");
    ann_.reserve(lanes_);
    for (int l = 0; l < lanes_; ++l) {
      ann_.emplace_back(std::make_unique<RtAbortableReg<Announce>>(Announce{}));
    }
    auto* genesis_node = new FrontierNode;
    genesis_node->done_uid.assign(lanes_, 0);
    genesis_node->done_void.assign(lanes_, 0);
    genesis_node->done_result.assign(lanes_, Result{});
    nodes_allocated_.store(1, std::memory_order_relaxed);
    frontier_.store(genesis_node, std::memory_order_release);
  }

  ~RtQaBatched() {
    // Quiescent by contract (all caller threads joined).
    delete frontier_.load(std::memory_order_relaxed);
  }

  RtQaBatched(const RtQaBatched&) = delete;
  RtQaBatched& operator=(const RtQaBatched&) = delete;

  /// Saturating surface: announce once, wait (helped) or combine until
  /// the op is applied. Exactly-once by uid dedup; never bottom.
  Result apply(Tid tid, Op op) {
    announce(tid, static_cast<int>(tid), std::move(op));
    return collect(tid, static_cast<int>(tid));
  }

  /// Pipelined surface, stage 1: stage `op` on `lane` (owned by tid's
  /// thread) without waiting. At most one staged op per lane; the lane
  /// must be collect()ed before it is reused. A thread that owns k
  /// lanes announces k ops and then collects them -- one combine round
  /// drains all k (plus every other thread's staged lanes).
  void announce(Tid tid, int lane, Op op) {
    LaneSlot& slot = lane_slots_[lane];
    const std::uint64_t uid = next_uid(slot, lane);
    locals_[tid].ops_started += 1;
    slot.ann = Announce{uid, true, std::move(op)};
    while (!ann_[lane]->write(slot.ann)) {
      // Single-writer cell: only a combiner's drain copy can hold it.
      std::this_thread::yield();
    }
  }

  /// Pipelined surface, stage 2: wait (helped) or combine until the
  /// lane's staged op is applied; returns its result. Never bottom.
  Result collect(Tid tid, int lane) {
    Local& me = locals_[tid];
    const std::uint64_t uid = lane_slots_[lane].last_uid;
    int polls = 0;
    bool combined = false;
    for (;;) {
      // Local demux cache first: the decided state this thread's own
      // combines last observed. Own-thread data, no atomics; a stale
      // cache only falls through to the shared frontier below.
      if (!me.cache.state.done_uid.empty() &&
          me.cache.state.done_uid[lane] == uid) {
        TBWF_ASSERT(me.cache.state.done_void[lane] == 0,
                    "collect() op voided without a query tombstone");
        if (!combined) me.fast_completions += 1;
        return me.cache.state.done_result[lane];
      }
      const FrontierNode* f = domain_.protect(tid, frontier_);
      const bool done = f->done_uid[lane] == uid;
      Result result{};
      if (done) {
        TBWF_ASSERT(f->done_void[lane] == 0,
                    "collect() op voided without a query tombstone");
        result = f->done_result[lane];
      }
      domain_.unprotect(tid);
      if (done) {
        if (!combined) me.fast_completions += 1;
        return result;
      }
      // Gate-aware waiting: while another combiner is mid-flight it
      // will drain our announce, so polling is the cheap move; the
      // moment the gate is free (or patience runs out -- the helping
      // bound) we run the slot protocol ourselves.
      const bool idle =
          combiner_gate_.load(std::memory_order_relaxed) == 0;
      if ((idle && patience_of(me) < kNeverCombine) ||
          ++polls > patience_of(me)) {
        polls = 0;
        combined = true;
        (void)combine_once(tid, /*tombstone_uid=*/0, /*self_lane=*/lane);
      } else if (polls % options_.yield_every == 0) {
        std::this_thread::yield();
      }
    }
  }

  /// T_QA surface: bounded; may return bottom under contention. Runs
  /// on tid's default lane (lane == tid).
  Response invoke(Tid tid, Op op) {
    Local& me = locals_[tid];
    LaneSlot& slot = lane_slots_[tid];
    const std::uint64_t uid = next_uid(slot, static_cast<int>(tid));
    me.ops_started += 1;
    slot.ann = Announce{uid, true, std::move(op)};
    bool landed = false;
    for (int t = 0; t < options_.announce_tries; ++t) {
      if (ann_[tid]->write(slot.ann)) {
        landed = true;
        break;
      }
    }
    if (!landed) return Response::make_bottom();  // query seals the fate
    for (int poll = 0; poll < patience_of(me); ++poll) {
      const FrontierNode* f = domain_.protect(tid, frontier_);
      const auto r = resolve_node(f, tid, uid);
      domain_.unprotect(tid);
      if (r.has_value()) {
        me.fast_completions += 1;
        return *r;
      }
      if (poll % options_.yield_every == options_.yield_every - 1) {
        std::this_thread::yield();
      }
    }
    for (int attempt = 0; attempt < options_.combine_attempts; ++attempt) {
      (void)combine_once(tid, /*tombstone_uid=*/0,
                         /*self_lane=*/static_cast<int>(tid));
      auto fr = inner_.read_frontier(tid);
      if (fr.has_value()) {
        if (auto r = resolve(*fr, tid, uid)) return *r;
      }
    }
    return Response::make_bottom();
  }

  /// Fate of tid's last invoke (Ok / F / bottom); F is final. Seals an
  /// open fate by committing a tombstone batch (see qa_batched.hpp).
  Response query(Tid tid) {
    const std::uint64_t uid = lane_slots_[tid].last_uid;
    if (uid == 0) return Response::make_not_applied();
    auto fr = inner_.read_frontier(tid);
    if (fr.has_value()) {
      if (auto r = resolve(*fr, tid, uid)) return *r;
    }
    const bool sealed = combine_once(tid, uid);
    fr = inner_.read_frontier(tid);
    if (sealed && fr.has_value()) {
      if (auto r = resolve(*fr, tid, uid)) return *r;
    }
    return Response::make_bottom();
  }

  // -- introspection ---------------------------------------------------------
  int n() const { return n_; }
  int lanes() const { return lanes_; }
  Inner& inner() { return inner_; }

  /// Authoritative decided state (reads the Paxos records, briefly
  /// retrying aborted cells); for exactness checks after quiescence.
  InnerStateRec state_snapshot() { return inner_.frontier_snapshot(); }

  /// Quiescent-only: dereferences the frontier without a hazard slot,
  /// so it is safe only while no thread can publish (before the worker
  /// threads start or after they are joined). Concurrent readers must
  /// go through collect()/invoke(), which pin the node first.
  std::uint64_t frontier_seq() const {
    return frontier_.load(std::memory_order_acquire)->seq;
  }
  /// Per-thread stats; read from the owning thread or after joining it.
  std::uint64_t ops_started(Tid tid) const { return locals_[tid].ops_started; }
  std::uint64_t combines(Tid tid) const { return locals_[tid].combines; }
  std::uint64_t fast_completions(Tid tid) const {
    return locals_[tid].fast_completions;
  }
  /// Reclamation accounting for the soak bound: nodes currently alive
  /// (allocated - freed) and the per-thread retire-ring high-water.
  std::int64_t live_nodes() const {
    return static_cast<std::int64_t>(
               nodes_allocated_.load(std::memory_order_relaxed)) -
           static_cast<std::int64_t>(domain_.freed());
  }
  std::size_t ring_high_water(Tid tid) const {
    return domain_.high_water(static_cast<int>(tid));
  }
  std::size_t ring_capacity() const { return domain_.capacity(); }
  /// Per-thread patience override (helping/starvation experiments);
  /// call before the thread starts issuing ops.
  void set_patience(Tid tid, int patience) { locals_[tid].patience = patience; }
  /// Hard bound live_nodes() can never exceed: every ring full, every
  /// hazard slot held, one published frontier, one node in flight per
  /// thread between allocation and publish/delete.
  std::int64_t live_node_bound() const {
    return static_cast<std::int64_t>(n_ * domain_.capacity() + 2 * n_ + 1);
  }

 private:
  /// Per-combiner (per OS thread) protocol state.
  struct alignas(util::kCacheLineSize) Local {
    int patience = -1;  ///< < 0 = use Options::patience
    std::uint64_t ops_started = 0;
    std::uint64_t combines = 0;
    std::uint64_t fast_completions = 0;
    /// Decided state as of this thread's last combine: collect()'s
    /// atomics-free demux fast path. Own-thread read/write only.
    InnerStateRec cache;
  };

  /// Per-lane producer state; a lane is driven by one thread at a time.
  struct alignas(util::kCacheLineSize) LaneSlot {
    Announce ann;
    std::uint64_t uid_counter = 0;
    std::uint64_t last_uid = 0;
  };

  static typename BS::State make_genesis(int lanes, State initial) {
    typename BS::State genesis;
    genesis.inner = std::move(initial);
    genesis.done_uid.assign(lanes, 0);
    genesis.done_void.assign(lanes, 0);
    genesis.done_result.assign(lanes, Result{});
    return genesis;
  }

  int patience_of(const Local& me) const {
    return me.patience >= 0 ? me.patience : options_.patience;
  }

  std::uint64_t next_uid(LaneSlot& slot, int lane) {
    const std::uint64_t uid =
        ++slot.uid_counter * static_cast<std::uint64_t>(lanes_) +
        static_cast<std::uint64_t>(lane);
    slot.last_uid = uid;
    return uid;
  }

  std::optional<Response> resolve_node(const FrontierNode* f, Tid tid,
                                       std::uint64_t uid) const {
    if (f->done_uid[tid] != uid) return std::nullopt;
    if (f->done_void[tid] != 0) return Response::make_not_applied();
    return Response::make_ok(f->done_result[tid]);
  }

  std::optional<Response> resolve(const InnerStateRec& fr, Tid tid,
                                  std::uint64_t uid) const {
    if (fr.state.done_uid[tid] != uid) return std::nullopt;
    if (fr.state.done_void[tid] != 0) return Response::make_not_applied();
    return Response::make_ok(fr.state.done_result[tid]);
  }

  /// Drain + commit one batch; publish the new frontier node. The
  /// caller's own pending item is always part of the drained batch: a
  /// tombstone_uid != 0 is pushed directly, and self_lane's staged op
  /// is self-included from the lane_slots_ local mirror (the caller is
  /// that lane's single writer), never from the duel-prone abortable
  /// cell. Returns true iff a batch containing the caller's item
  /// decided, or the caller had nothing pending.
  bool combine_once(Tid tid, std::uint64_t tombstone_uid,
                    int self_lane = -1) {
    // Advisory duel damper: one combiner at a time preferred, bounded
    // bypass so a stalled holder can only delay, never block.
    std::uint32_t expected = 0;
    bool gated = combiner_gate_.compare_exchange_strong(
        expected, 1, std::memory_order_acquire, std::memory_order_relaxed);
    if (!gated) {
      for (int i = 0; i < options_.gate_spins && !gated; ++i) {
        std::this_thread::yield();
        expected = 0;
        gated = combiner_gate_.compare_exchange_strong(
            expected, 1, std::memory_order_acquire,
            std::memory_order_relaxed);
      }
    }
    const bool ok = run_combine(tid, tombstone_uid, self_lane);
    if (gated) combiner_gate_.store(0, std::memory_order_release);
    return ok;
  }

  bool run_combine(Tid tid, std::uint64_t tombstone_uid, int self_lane) {
    Local& me = locals_[tid];
    auto fr = inner_.read_frontier(tid);
    if (!fr.has_value()) return false;
    const auto& done = fr->state.done_uid;

    typename BS::Op batch;
    batch.reserve(static_cast<std::size_t>(lanes_) + 1);
    if (tombstone_uid != 0 && tombstone_uid > done[tid]) {
      qa::BatchItem<S> item;
      item.owner = static_cast<sim::Pid>(tid);
      item.uid = tombstone_uid;
      item.tombstone = true;
      batch.push_back(std::move(item));
    }
    for (int lane = 0; lane < lanes_; ++lane) {
      if (lane == self_lane) {
        // Self-include from the local mirror (the sim engine's
        // ann_mine_ move): we are this lane's single writer, so the
        // mirror is exact, and reading our own abortable cell could
        // abort against a concurrent drain copy and silently drop our
        // own op from our own batch.
        const Announce& mine = lane_slots_[lane].ann;
        if (mine.has_op && mine.uid > done[lane]) {
          batch.push_back(qa::BatchItem<S>{lane, mine.uid, mine.op});
        }
        continue;
      }
      auto a = ann_[lane]->read();
      if (!a.has_value()) continue;  // busy cell: helped next round
      if (a->has_op && a->uid > done[lane]) {
        batch.push_back(qa::BatchItem<S>{lane, a->uid, a->op});
      }
    }
    if (batch.empty()) {
      publish_frontier(tid, *fr);  // catch-up: demux what is decided
      if (fr->seq > me.cache.seq) me.cache = *fr;
      return true;
    }
    me.combines += 1;
    const auto resp = inner_.invoke(tid, std::move(batch));
    const InnerStateRec& decided = inner_.local_decided(tid);
    publish_frontier(tid, decided);
    if (decided.seq > me.cache.seq) me.cache = decided;
    return resp.ok();
  }

  /// Publishes `rec` as a new frontier node unless a newer one is
  /// already up. Pins `cur` with the caller's hazard slot (free at
  /// every call site -- run_combine holds no hazard) across the seq
  /// read and the CAS: the combiner gate is advisory with bounded
  /// bypass, so a concurrent publisher can swing the frontier, retire
  /// the old node, and free it via a scan between an unprotected load
  /// and its dereference -- and a recycled allocation at the same
  /// address could then win the CAS with an older seq (ABA). A
  /// protected node cannot be freed, and every node is published at
  /// most once, so a CAS that succeeds against the pinned `cur` really
  /// did displace it.
  void publish_frontier(Tid tid, const InnerStateRec& rec) {
    const FrontierNode* cur = domain_.protect(tid, frontier_);
    if (rec.seq <= cur->seq) {
      domain_.unprotect(tid);
      return;
    }
    auto* node = new FrontierNode;
    node->seq = rec.seq;
    node->done_uid = rec.state.done_uid;
    node->done_void = rec.state.done_void;
    node->done_result = rec.state.done_result;
    nodes_allocated_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      const FrontierNode* expected = cur;
      // seq_cst success pairs with the hazard validation (rt_reclaim).
      if (frontier_.compare_exchange_strong(expected, node,
                                            std::memory_order_seq_cst,
                                            std::memory_order_acquire)) {
        domain_.unprotect(tid);
        domain_.retire(static_cast<int>(tid), cur);
        return;
      }
      // Lost the race: re-pin whatever is current and re-check recency.
      cur = domain_.protect(tid, frontier_);
      if (rec.seq <= cur->seq) {
        domain_.unprotect(tid);
        // Lost to a newer publish; the node was never visible.
        delete node;
        nodes_allocated_.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  int n_;
  int lanes_;
  Options options_;
  Inner inner_;
  HazardDomain<FrontierNode> domain_;
  std::vector<std::unique_ptr<RtAbortableReg<Announce>>> ann_;
  std::vector<Local> locals_;
  std::vector<LaneSlot> lane_slots_;
  std::atomic<const FrontierNode*> frontier_{nullptr};
  std::atomic<std::uint32_t> combiner_gate_{0};
  std::atomic<std::uint64_t> nodes_allocated_{0};
};

}  // namespace tbwf::rt
