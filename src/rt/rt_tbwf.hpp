// Real-threads TBWF-style counter: the Figure 7 structure ported to
// wall-clock time for the E11 benchmark.
//
// Timeliness in a deployed system is wall-clock responsiveness, so the
// Omega-Delta role is played by a LEASE: a thread leads for a bounded
// real-time window; if it is descheduled (not timely), the lease
// expires and leadership moves on -- the graceful-degradation shape of
// the paper, in clock units. The shared object is a query-abortable
// counter over a try-lock cell (RtAbortableReg): the leader retries the
// abortable fast path it mostly wins because non-leaders back off.
//
// This port is a pragmatic engineering artifact: the lease CAS is a
// strong primitive the paper's construction deliberately avoids; the
// simulator backend is the register-only reproduction. E11 only uses
// this to price the approach against a mutex and a CAS loop on real
// threads. Fairness note: leadership rotates because a finishing leader
// releases the lease and waits until someone else has held it (the
// canonical-use discipline of Definition 6).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "rt/rt_registers.hpp"

namespace tbwf::rt {

/// Bounded-term leadership lease over a single atomic word.
class LeaseElector {
 public:
  explicit LeaseElector(std::chrono::nanoseconds term) : term_(term) {}

  static constexpr std::uint32_t kNoOwner = 0xFFFFFFFFu;

  /// Try to become (or remain) leader now. Returns true iff `tid` holds
  /// the lease after the call.
  bool try_lead(std::uint32_t tid) {
    const std::uint64_t now = clock_ns();
    std::uint64_t cur = lease_.load(std::memory_order_acquire);
    const std::uint32_t owner = static_cast<std::uint32_t>(cur >> 40);
    const std::uint64_t expiry = cur & ((1ULL << 40) - 1);
    if (owner == tid && now < expiry) return true;
    if (owner != kNoOwner >> 8 && now < expiry) return false;
    const std::uint64_t next =
        (static_cast<std::uint64_t>(tid) << 40) |
        ((now + static_cast<std::uint64_t>(term_.count())) &
         ((1ULL << 40) - 1));
    return lease_.compare_exchange_strong(cur, next,
                                          std::memory_order_acq_rel);
  }

  void release(std::uint32_t tid) {
    std::uint64_t cur = lease_.load(std::memory_order_acquire);
    if (static_cast<std::uint32_t>(cur >> 40) == tid) {
      const std::uint64_t freed =
          (static_cast<std::uint64_t>(kNoOwner >> 8) << 40);
      lease_.compare_exchange_strong(cur, freed,
                                     std::memory_order_acq_rel);
    }
  }

  std::uint32_t owner() const {
    return static_cast<std::uint32_t>(
        lease_.load(std::memory_order_acquire) >> 40);
  }

 private:
  static std::uint64_t clock_ns() {
    return static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count()) &
           ((1ULL << 40) - 1);
  }

  std::atomic<std::uint64_t> lease_{
      (static_cast<std::uint64_t>(kNoOwner >> 8) << 40)};
  std::chrono::nanoseconds term_;
};

/// TBWF-style wall-clock counter (see file comment for the caveats).
///
/// NOTE: this is the lightweight demo path -- a raw read-modify-write
/// under the lease. It is exactly-once only while the lease term
/// exceeds the worst preemption during an operation; a leader
/// descheduled past its lease can race the next leader and lose an
/// update. Use RtTbwfObject<qa::Counter> (uid-deduplicated) when
/// exactness matters; bench_rt_throughput prices both.
class RtTbwfCounter {
 public:
  explicit RtTbwfCounter(
      std::chrono::nanoseconds lease_term = std::chrono::microseconds(50))
      : elector_(lease_term), cell_(0) {}

  /// Increment; returns the value before the increment.
  std::int64_t fetch_add(std::uint32_t tid, std::int64_t delta) {
    for (int spin = 0;; ++spin) {
      if (elector_.try_lead(tid)) {
        // Leader: drive the abortable object until the op lands.
        for (;;) {
          auto v = cell_.read();
          if (!v.has_value()) continue;  // abort: retry (we lead)
          if (cell_.write(*v + delta)) {
            elector_.release(tid);
            return *v;
          }
        }
      }
      // Not the leader: back off politely (non-leaders must leave the
      // abortable cell alone so the leader's ops run solo).
      if (spin % 64 == 63) std::this_thread::yield();
    }
  }

 private:
  LeaseElector elector_;
  RtAbortableReg<std::int64_t> cell_;
};

}  // namespace tbwf::rt

#include "qa/sequential_type.hpp"
#include "rt/rt_qa.hpp"

namespace tbwf::rt {

/// The Figure 7 transformation on real threads, for any Sequential type:
/// leadership comes from the wall-clock lease (the rt stand-in for
/// Omega-Delta -- see the file comment above), the object is the
/// real-threads port of the query-abortable universal construction.
/// While a thread holds the lease it drives the op/query automaton of
/// Figure 8; when the lease is lost mid-operation the floating value is
/// either adopted by the next leader or permanently displaced, and the
/// thread's next query resolves which.
template <qa::Sequential S>
class RtTbwfObject {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Tid = std::uint32_t;

  RtTbwfObject(int nthreads, State initial,
               std::chrono::nanoseconds lease_term =
                   std::chrono::microseconds(50))
      : elector_(lease_term), qa_(nthreads, std::move(initial)) {}

  /// Execute `op`; returns only when it took effect exactly once.
  ///
  /// The Figure 8 automaton, verbatim: the next O_QA operation is `op`
  /// until an invoke has been issued; after any bottom it is `query`;
  /// after F it is `op` again. The automaton state survives leadership
  /// changes -- re-invoking before the previous invoke's fate is
  /// resolved could double-apply the operation (the floating accept can
  /// still be adopted by a later leader).
  Result invoke(Tid tid, Op op) {
    bool unresolved = false;  // an invoke is in flight with unknown fate
    for (int spin = 0;; ++spin) {
      if (!elector_.try_lead(tid)) {
        if (spin % 64 == 63) std::this_thread::yield();
        continue;
      }
      const auto r = unresolved ? qa_.query(tid) : qa_.invoke(tid, op);
      if (!unresolved) unresolved = true;
      if (r.ok()) {
        elector_.release(tid);
        return r.value;
      }
      if (r.not_applied()) unresolved = false;  // F is final: safe to retry
      // bottom: keep querying (possibly after re-winning the lease)
    }
  }

  RtQaUniversal<S>& qa() { return qa_; }

 private:
  LeaseElector elector_;
  RtQaUniversal<S> qa_;
};

}  // namespace tbwf::rt
