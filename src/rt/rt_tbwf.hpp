// Real-threads TBWF-style counter: the Figure 7 structure ported to
// wall-clock time for the E11 benchmark.
//
// Timeliness in a deployed system is wall-clock responsiveness, so the
// Omega-Delta role is played by a LEASE: a thread leads for a bounded
// real-time window; if it is descheduled (not timely), the lease
// expires and leadership moves on -- the graceful-degradation shape of
// the paper, in clock units. The shared object is a query-abortable
// counter over a try-lock cell (RtAbortableReg): the leader retries the
// abortable fast path it mostly wins because non-leaders back off.
//
// This port is a pragmatic engineering artifact: the lease CAS is a
// strong primitive the paper's construction deliberately avoids; the
// simulator backend is the register-only reproduction. E11 only uses
// this to price the approach against a mutex and a CAS loop on real
// threads. Fairness note: leadership rotates because a finishing leader
// releases the lease and waits until someone else has held it (the
// canonical-use discipline of Definition 6).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "registers/abort_policy.hpp"
#include "rt/rt_registers.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

/// Adaptive lease-term calibrator: an EWMA of observed operation/step
/// latency, in the spirit of the paper's dynamic activity-monitor
/// timeouts (Section 5's monitors grow their windows to match observed
/// behaviour; here the lease term tracks how long a leader actually
/// needs). Feed it per-operation latencies with observe(); the elector
/// asks for term_ns() on every acquisition, so the term follows load:
/// fast ops shrink the term (quick failover after a leader dies), slow
/// ops grow it (no spurious expiry mid-operation).
///
/// Thread-safe and lock-free: the EWMA lives in one atomic word updated
/// by CAS; a lost race just drops that sample, which is harmless for a
/// smoothed estimate.
class LeaseCalibrator {
 public:
  struct Options {
    double alpha = 0.125;              ///< EWMA weight of a new sample
    double multiplier = 16.0;          ///< term = multiplier * ewma
    std::uint64_t floor_ns = 2000;     ///< never shorter than this
    std::uint64_t ceil_ns = 20000000;  ///< never longer than this (20 ms)
    /// Drift-margin guard: assume own clock may run up to this many
    /// ppm FAST and shorten the claimed term accordingly, so a
    /// drifting leaseholder undershoots rather than overshoots the
    /// expiry everyone else computes. 0 (default) changes nothing.
    std::uint64_t drift_margin_ppm = 0;
  };

  LeaseCalibrator() : LeaseCalibrator(Options{}) {}
  explicit LeaseCalibrator(Options options,
                           std::uint64_t initial_latency_ns = 10000)
      : options_(options), ewma_ns_(initial_latency_ns) {}

  /// Record one observed operation latency.
  /// All orders relaxed: the EWMA is self-contained numeric state -- no
  /// consumer reads other data "through" it, and a term computed from a
  /// slightly stale estimate is exactly as valid as the fresh one.
  void observe(std::uint64_t latency_ns) {
    std::uint64_t cur = ewma_ns_->load(std::memory_order_relaxed);
    for (int tries = 0; tries < 4; ++tries) {
      const double next = static_cast<double>(cur) +
                          options_.alpha * (static_cast<double>(latency_ns) -
                                            static_cast<double>(cur));
      const auto packed =
          static_cast<std::uint64_t>(next < 1.0 ? 1.0 : next);
      if (ewma_ns_->compare_exchange_weak(cur, packed,
                                          std::memory_order_relaxed)) {
        samples_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  std::uint64_t ewma_ns() const {
    return ewma_ns_->load(std::memory_order_relaxed);
  }

  /// The calibrated lease term: multiplier * ewma, drift-discounted,
  /// clamped.
  std::uint64_t term_ns() const {
    double raw = options_.multiplier * static_cast<double>(ewma_ns());
    if (options_.drift_margin_ppm > 0) {
      // A clock d ppm fast inflates both the observed latencies and the
      // holder's idea of "now + term"; discounting by the same factor
      // keeps the true expiry at or before the claimed one.
      raw = raw * 1e6 /
            (1e6 + static_cast<double>(options_.drift_margin_ppm));
    }
    auto term = static_cast<std::uint64_t>(raw);
    if (term < options_.floor_ns) term = options_.floor_ns;
    if (term > options_.ceil_ns) term = options_.ceil_ns;
    return term;
  }

  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Forget everything observed so far and restart the EWMA from
  /// `initial_latency_ns`. Call when the observing process is restarted
  /// or re-joins in a new epoch: a replacement worker must not inherit
  /// the corpse's timing estimate (a dead leader's last samples say
  /// nothing about the machine state its successor runs under).
  /// relaxed, like observe(): self-contained numeric state -- a racing
  /// observe() that lands after the reset is just the first sample of
  /// the new incarnation's estimate.
  void reset(std::uint64_t initial_latency_ns = 10000) {
    ewma_ns_->store(initial_latency_ns, std::memory_order_relaxed);
    samples_.store(0, std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
  /// Own line: CASed by every committing leader; keeping it off the
  /// read-only options_ line lets term_ns() readers stay in shared
  /// state. samples_ lands on the trailing line alone (the struct is
  /// line-aligned), so its relaxed bumps disturb no reader either.
  util::CachelinePadded<std::atomic<std::uint64_t>> ewma_ns_;
  std::atomic<std::uint64_t> samples_{0};
};

/// Bounded-term leadership lease over a single atomic word, with fencing.
///
/// Layout: owner (24 bits) | expiry (40 bits of nanoseconds, modulo
/// 2^40). The 40-bit clock wraps every ~18 minutes, so expiry tests use
/// wraparound-safe ring comparison (like TCP sequence numbers): the
/// lease is live iff expiry is AHEAD of now by less than half the ring.
/// Terms are clamped to kMaxTermNs (~69 s) so a live lease is always
/// well inside the half-window; a lease abandoned for longer than ~9
/// minutes could alias back to "live", which the supervisor rules out
/// by revoking the leases of dead workers.
///
/// Fencing: every ownership transfer increments a monotone fence
/// counter, and try_lead hands the winner its fence token. A commit
/// guarded by validate(tid, token) can never be performed with a stale
/// lease from before a revoke() or a re-election -- the token from
/// acquisition k fails validation as soon as acquisition k+1 (or a
/// revoke) bumps the fence. This is what makes supervisor restarts
/// safe: revoke(tid) on the dead incarnation's behalf fences off any
/// token the revived worker may have captured before dying.
///
/// Clock hardening (the drift-tolerant leasing layer):
///   - every clock read is MONOTONE-CLAMPED against the largest value
///     any thread has fed this elector, so a thread whose own source
///     jumps backward or freezes still judges leases at (at least) the
///     global high-water mark -- a backward jump can neither resurrect
///     an expired lease nor stretch a live one;
///   - try_lead detects FORWARD JUMPS: a raw reading that leaps past
///     the high-water mark by more than jump_suspect_ns means the
///     caller's clock (or scheduling) left the calibrated regime, so
///     its own lease state is suspect -- it revokes itself (monotone
///     fence bump, the supervisor-restart path), resets the attached
///     calibrator, and reports the election lost. The default
///     threshold (1 s) sits far above any term the calibrator can
///     produce and far below operator-scale clock steps.
class LeaseElector {
 public:
  using ClockFn = std::uint64_t (*)();  ///< monotone nanoseconds

  /// One no-owner sentinel, sized to the 24-bit owner field. Real tids
  /// must be < kNoOwner.
  static constexpr std::uint32_t kNoOwner = 0xFFFFFFu;
  static constexpr std::uint64_t kTimeMask = (1ULL << 40) - 1;
  /// Leases ahead by >= half the 40-bit ring read as expired.
  static constexpr std::uint64_t kHalfWindow = 1ULL << 39;
  /// Hard cap on the term so expiry stays well inside the half-window.
  static constexpr std::uint64_t kMaxTermNs = 1ULL << 36;  // ~68.7 s
  /// Default forward-jump suspicion threshold (see class comment).
  static constexpr std::uint64_t kDefaultJumpSuspectNs = 1000000000;  // 1 s

  explicit LeaseElector(std::chrono::nanoseconds term,
                        ClockFn clock = nullptr)
      : term_ns_(clamp_term(term)), clock_(clock) {}

  /// Try to become (or remain) leader now; on success *fence_out (if
  /// non-null) receives the token to pass to validate() before any
  /// commit performed under this lease. A sitting leader renews its
  /// expiry via CAS -- if the renewal CAS fails the lease was stolen or
  /// revoked and the call reports failure. A caller whose clock jumped
  /// forward past the suspicion threshold fences itself off instead
  /// (see the class comment) and reports failure.
  bool try_lead(std::uint32_t tid, std::uint64_t* fence_out = nullptr) {
    const std::uint64_t raw = raw_clock();
    // relaxed: the high-water mark is self-contained numeric state (see
    // mono_clamp); the jump test only compares magnitudes.
    const std::uint64_t seen = last_raw_->load(std::memory_order_relaxed);
    const std::uint64_t now = mono_clamp(raw) & kTimeMask;
    if (jump_suspect_ns_ != 0 && seen != 0 && raw > seen &&
        raw - seen >= jump_suspect_ns_) {
      // Own clock leapt out of the calibrated regime: every duration
      // this thread believes about its lease is untrustworthy. Treat
      // the lease as lost the safe way -- revoke (frees + fence bump,
      // the same path a supervisor restart takes) and start the
      // calibrator over rather than poison the EWMA with jump-spanning
      // samples.
      revoke(tid);
      if (calibrator_ != nullptr) calibrator_->reset();
      // relaxed: monotone diagnostic tally.
      jumps_detected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // acquire pairs with the release half of the CAS that last
    // transferred ownership: observing a freed/expired word implies
    // observing the fence value of that tenure.
    std::uint64_t cur = hot_.lease.load(std::memory_order_acquire);
    const auto owner = static_cast<std::uint32_t>(cur >> 40);
    const std::uint64_t expiry = cur & kTimeMask;
    const bool live = owner != kNoOwner && lease_live(now, expiry);
    if (live && owner != tid) return false;
    const std::uint64_t next =
        (static_cast<std::uint64_t>(tid) << 40) |
        ((now + current_term_ns()) & kTimeMask);
    // acq_rel: acquire makes the previous tenure's writes visible to
    // the new leader; release publishes this takeover to the next one.
    if (!hot_.lease.compare_exchange_strong(cur, next,
                                            std::memory_order_acq_rel)) {
      return false;
    }
    if (live) {
      // Renewal: same tenure, same token.
      if (fence_out != nullptr) {
        *fence_out = hot_.fence.load(std::memory_order_acquire);
      }
      return true;
    }
    const std::uint64_t token =
        hot_.fence.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (fence_out != nullptr) *fence_out = token;
    return true;
  }

  /// True iff `tid` still holds a live lease under the same tenure that
  /// produced `token`. Call immediately before a commit; a false return
  /// means the lease was lost (expired + re-elected, or revoked) and the
  /// commit must not happen.
  bool validate(std::uint32_t tid, std::uint64_t token) const {
    const std::uint64_t cur = hot_.lease.load(std::memory_order_acquire);
    if (static_cast<std::uint32_t>(cur >> 40) != tid) return false;
    if (!lease_live(now_ns(), cur & kTimeMask)) return false;
    return hot_.fence.load(std::memory_order_acquire) == token;
  }

  void release(std::uint32_t tid) {
    std::uint64_t cur = hot_.lease.load(std::memory_order_acquire);
    if (static_cast<std::uint32_t>(cur >> 40) == tid) {
      // acq_rel: release hands the critical-section writes to the next
      // acquirer through the freed word.
      hot_.lease.compare_exchange_strong(cur, kFreed,
                                         std::memory_order_acq_rel);
    }
  }

  /// Forcibly fence off `tid`'s lease (supervisor restart path: the old
  /// incarnation is dead; any token it captured must never validate
  /// again). Frees the lease if tid holds it and advances the fence.
  void revoke(std::uint32_t tid) {
    std::uint64_t cur = hot_.lease.load(std::memory_order_acquire);
    while (static_cast<std::uint32_t>(cur >> 40) == tid) {
      if (hot_.lease.compare_exchange_weak(cur, kFreed,
                                           std::memory_order_acq_rel)) {
        // acq_rel: the bump must be ordered after the free above and
        // visible before any reader can revalidate the dead token.
        hot_.fence.fetch_add(1, std::memory_order_acq_rel);
        return;
      }
    }
  }

  /// Current owner; kNoOwner when free (also when an expired owner is
  /// still in the word -- the lease is only *held* while live).
  std::uint32_t owner() const {
    const std::uint64_t cur = hot_.lease.load(std::memory_order_acquire);
    const auto raw = static_cast<std::uint32_t>(cur >> 40);
    if (raw == kNoOwner) return kNoOwner;
    return lease_live(now_ns(), cur & kTimeMask) ? raw : kNoOwner;
  }

  std::uint64_t fence() const {
    return hot_.fence.load(std::memory_order_acquire);
  }

  /// Attach an adaptive term calibrator (nullptr detaches; the fixed
  /// constructor term then rules again). Set before spawning threads or
  /// from a quiescent point -- the pointer itself is not synchronized.
  void set_calibrator(LeaseCalibrator* calibrator) {
    calibrator_ = calibrator;
  }

  /// Forward-jump suspicion threshold; 0 disables detection. Set from a
  /// quiescent point, like set_calibrator.
  void set_jump_suspect(std::uint64_t ns) { jump_suspect_ns_ = ns; }

  /// How many times try_lead refused a caller because its clock jumped.
  std::uint64_t jumps_detected() const {
    return jumps_detected_.load(std::memory_order_relaxed);
  }

  std::uint64_t current_term_ns() const {
    if (calibrator_ != nullptr) {
      const std::uint64_t t = calibrator_->term_ns();
      return t > kMaxTermNs ? kMaxTermNs : t;
    }
    return term_ns_;
  }

 private:
  static constexpr std::uint64_t kFreed =
      static_cast<std::uint64_t>(kNoOwner) << 40;

  static std::uint64_t clamp_term(std::chrono::nanoseconds term) {
    const auto ns = static_cast<std::uint64_t>(
        term.count() < 1 ? 1 : term.count());
    return ns > kMaxTermNs ? kMaxTermNs : ns;
  }

  /// Ring comparison on the 40-bit clock: live iff expiry is strictly
  /// ahead of now by less than half the ring. Handles expiry values
  /// that wrapped past 2^40 while now has not (and vice versa).
  static bool lease_live(std::uint64_t now, std::uint64_t expiry) {
    const std::uint64_t ahead = (expiry - now) & kTimeMask;
    return ahead != 0 && ahead < kHalfWindow;
  }

  static std::uint64_t steady_clock_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::uint64_t raw_clock() const {
    return clock_ != nullptr ? clock_() : steady_clock_ns();
  }

  /// Fold `raw` into the elector-wide high-water mark and return the
  /// clamped (monotone) reading. All orders relaxed: the mark is
  /// self-contained numeric state -- nothing is published through it,
  /// and a marginally stale maximum only makes the clamp marginally
  /// weaker for one read. A lost CAS race means someone stored an even
  /// larger value, which the reload picks up.
  std::uint64_t mono_clamp(std::uint64_t raw) const {
    std::uint64_t seen = last_raw_->load(std::memory_order_relaxed);
    while (raw > seen) {
      if (last_raw_->compare_exchange_weak(seen, raw,
                                           std::memory_order_relaxed)) {
        return raw;
      }
    }
    return seen;
  }

  std::uint64_t now_ns() const {
    return mono_clamp(raw_clock()) & kTimeMask;
  }

  /// The two contended words, isolated together on one line. They stay
  /// TOGETHER deliberately: every ownership transfer writes both and
  /// validate() reads both, so splitting them would double the line
  /// transfers per election; what must NOT share their line is the
  /// read-only configuration below (term, calibrator pointer, clock),
  /// which every try_lead reads and which would otherwise miss on each
  /// competitor's CAS.
  struct alignas(util::kCacheLineSize) HotWords {
    std::atomic<std::uint64_t> lease{kFreed};
    std::atomic<std::uint64_t> fence{0};
  };
  HotWords hot_;
  /// Unmasked clock high-water mark across every reader of this
  /// elector. Its own line: every try_lead/validate of every thread
  /// touches it, and it must not bounce the lease/fence line or sit on
  /// the read-only configuration below.
  mutable util::CachelinePadded<std::atomic<std::uint64_t>> last_raw_{0};
  std::atomic<std::uint64_t> jumps_detected_{0};
  std::uint64_t term_ns_;
  std::uint64_t jump_suspect_ns_ = kDefaultJumpSuspectNs;
  LeaseCalibrator* calibrator_ = nullptr;
  ClockFn clock_;
};

/// TBWF-style wall-clock counter (see file comment for the caveats).
///
/// NOTE: this is the lightweight demo path -- a raw read-modify-write
/// under the lease. The fence check narrows the stale-leader window to
/// the validate-to-write gap: a leader descheduled past its lease whose
/// tenure was taken over can no longer race the next leader from a
/// whole operation away, but exactly-once still needs the lease term to
/// exceed the worst preemption inside that gap. Use
/// RtTbwfObject<qa::Counter> (uid-deduplicated) when exactness matters;
/// bench_rt_throughput prices both.
class RtTbwfCounter {
 public:
  explicit RtTbwfCounter(
      std::chrono::nanoseconds lease_term = std::chrono::microseconds(50))
      : elector_(lease_term), cell_(0) {}

  /// Increment; returns the value before the increment.
  std::int64_t fetch_add(std::uint32_t tid, std::int64_t delta) {
    for (int spin = 0;; ++spin) {
      std::uint64_t token = 0;
      if (elector_.try_lead(tid, &token)) {
        // Leader: drive the abortable object until the op lands.
        for (;;) {
          auto v = cell_.read();
          if (!v.has_value()) continue;  // abort: retry (we lead)
          if (!elector_.validate(tid, token)) break;  // lost the lease
          if (cell_.write(*v + delta)) {
            elector_.release(tid);
            return *v;
          }
        }
        continue;  // fenced out mid-operation: re-elect and retry
      }
      // Not the leader: back off politely (non-leaders must leave the
      // abortable cell alone so the leader's ops run solo).
      if (spin % 64 == 63) std::this_thread::yield();
    }
  }

  LeaseElector& elector() { return elector_; }

 private:
  LeaseElector elector_;
  RtAbortableReg<std::int64_t> cell_;
};

}  // namespace tbwf::rt

#include "qa/sequential_type.hpp"
#include "rt/rt_qa.hpp"

namespace tbwf::rt {

/// The Figure 7 transformation on real threads, for any Sequential type:
/// leadership comes from the wall-clock lease (the rt stand-in for
/// Omega-Delta -- see the file comment above), the object is the
/// real-threads port of the query-abortable universal construction.
/// While a thread holds the lease it drives the op/query automaton of
/// Figure 8; when the lease is lost mid-operation the floating value is
/// either adopted by the next leader or permanently displaced, and the
/// thread's next query resolves which.
template <qa::Sequential S>
class RtTbwfObject {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Tid = std::uint32_t;

  RtTbwfObject(int nthreads, State initial,
               std::chrono::nanoseconds lease_term =
                   std::chrono::microseconds(50))
      : elector_(lease_term), qa_(nthreads, std::move(initial)) {}

  /// Execute `op`; returns only when it took effect exactly once.
  ///
  /// The Figure 8 automaton, verbatim: the next O_QA operation is `op`
  /// until an invoke has been issued; after any bottom it is `query`;
  /// after F it is `op` again. The automaton state survives leadership
  /// changes -- re-invoking before the previous invoke's fate is
  /// resolved could double-apply the operation (the floating accept can
  /// still be adopted by a later leader). Non-leaders wait out the
  /// leader with bounded exponential backoff instead of burning the
  /// core (they must also leave the registers alone, so waiting is all
  /// they can usefully do).
  Result invoke(Tid tid, Op op) {
    bool unresolved = false;  // an invoke is in flight with unknown fate
    int lost_elections = 0;
    for (;;) {
      if (!elector_.try_lead(tid)) {
        back_off(lost_elections++);
        continue;
      }
      lost_elections = 0;
      const auto r = unresolved ? qa_.query(tid) : qa_.invoke(tid, op);
      if (!unresolved) unresolved = true;
      if (r.ok()) {
        elector_.release(tid);
        return r.value;
      }
      if (r.not_applied()) unresolved = false;  // F is final: safe to retry
      // bottom: keep querying (possibly after re-winning the lease)
    }
  }

  RtQaUniversal<S>& qa() { return qa_; }
  LeaseElector& elector() { return elector_; }

 private:
  void back_off(int attempt) {
    static const registers::BoundedBackoff kBackoff{
        {.base = 1, .cap = 64, .free_retries = 6}};
    const std::uint64_t yields = kBackoff.delay(attempt);
    if (yields == 0) return;  // immediate retry: spin once more
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }

  LeaseElector elector_;
  RtQaUniversal<S> qa_;
};

}  // namespace tbwf::rt
