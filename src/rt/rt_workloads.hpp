// Canonical supervised rt workloads, shared by the fault-sweep tests
// (rt conformance) and the recovery benches (E13).
//
// LeasedCounterWorkload is the full hardened hot path of this PR wired
// together: a fenced LeaseElector whose term is calibrated from
// observed op latency (LeaseCalibrator), an abortable try-lock cell
// that storms can be injected into, bounded backoff for aborted
// operations (registers::BoundedBackoff), fault points INSIDE the
// operation so kills land mid-commit, and the canonical-use rotation
// discipline of Definition 6: a finishing leader waits until someone
// else has held the lease (the fence advanced) -- or a bounded solo
// timeout -- before competing again, which is what spreads completions
// across threads and makes the per-thread wait-freedom check of the
// conformance checker meaningful on real threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "registers/abort_policy.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_tbwf.hpp"

namespace tbwf::rt {

class LeasedCounterWorkload {
 public:
  explicit LeasedCounterWorkload(int nthreads,
                                 std::uint64_t rotation_wait_ns = 200000)
      : elector_(std::chrono::microseconds(500)),
        cell_(0),
        commits_(std::make_unique<std::atomic<std::uint64_t>[]>(
            static_cast<std::size_t>(nthreads))),
        rotation_wait_ns_(rotation_wait_ns) {
    elector_.set_calibrator(&calibrator_);
    for (int t = 0; t < nthreads; ++t) commits_[t].store(0);
  }

  /// Expose the cell to the supervisor's storm injector. Call before
  /// RtSupervisor::run().
  void attach_storms(RtSupervisor& supervisor) {
    cell_.set_injector(&supervisor.injector());
  }

  /// The restart hook that makes revival safe: fence off any lease the
  /// dead incarnation still holds before its replacement runs.
  std::function<void(std::uint32_t, std::uint32_t)> on_restart() {
    return [this](std::uint32_t tid, std::uint32_t) {
      elector_.revoke(tid);
    };
  }

  RtWorkerBody body() {
    return [this](RtWorkerContext& ctx) { run_worker(ctx); };
  }

  LeaseElector& elector() { return elector_; }
  LeaseCalibrator& calibrator() { return calibrator_; }

  std::uint64_t commits(std::uint32_t tid) const {
    return commits_[tid].load(std::memory_order_relaxed);
  }

  /// Quiescent-only (after RtSupervisor::run returned).
  std::int64_t value() {
    for (;;) {
      auto v = cell_.read();
      if (v.has_value()) return *v;
    }
  }

 private:
  void run_worker(RtWorkerContext& ctx) {
    const std::uint32_t tid = ctx.tid();
    const registers::BoundedBackoff backoff{
        {.base = 1, .cap = 32, .free_retries = 4}};
    int lost_elections = 0;
    while (!ctx.should_stop()) {
      ctx.fault_point();
      std::uint64_t token = 0;
      if (!elector_.try_lead(tid, &token)) {
        yield_for(backoff.delay(lost_elections++));
        continue;
      }
      lost_elections = 0;
      ctx.record(RtEventKind::kLeaseAcquire, token);
      ctx.op_start();
      const std::uint64_t op_begin = ctx.now_ns();
      bool committed = false;
      for (int attempt = 0; !committed && !ctx.should_stop(); ++attempt) {
        ctx.fault_point();
        // Renew the lease (same tenure, same token); a false return
        // means it was stolen or revoked -- abandon the operation.
        if (!elector_.try_lead(tid, &token)) {
          ctx.record(RtEventKind::kStaleFenceBlocked);
          break;
        }
        const auto v = cell_.read();
        if (!v.has_value()) {
          ctx.record(RtEventKind::kAbort);
          yield_for(backoff.delay(attempt));
          continue;
        }
        ctx.fault_point();  // mid-operation danger zone: kills land here
        if (!elector_.validate(tid, token)) {
          ctx.record(RtEventKind::kStaleFenceBlocked);
          break;
        }
        if (!cell_.write(*v + 1)) {
          ctx.record(RtEventKind::kAbort);
          yield_for(backoff.delay(attempt));
          continue;
        }
        committed = true;
        commits_[tid].fetch_add(1, std::memory_order_relaxed);
        calibrator_.observe(ctx.now_ns() - op_begin);
        ctx.op_complete(static_cast<std::uint64_t>(*v + 1));
      }
      const std::uint64_t fence_after = elector_.fence();
      elector_.release(tid);
      ctx.record(RtEventKind::kLeaseRelease);
      // Canonical-use rotation: wait until another thread has held the
      // lease, or a bounded timeout when running solo.
      const std::uint64_t wait_begin = ctx.now_ns();
      while (!ctx.should_stop() && elector_.fence() == fence_after &&
             ctx.now_ns() - wait_begin < rotation_wait_ns_) {
        ctx.fault_point();
        std::this_thread::yield();
      }
    }
  }

  static void yield_for(std::uint64_t yields) {
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }

  LeaseElector elector_;
  LeaseCalibrator calibrator_;
  RtAbortableReg<std::int64_t> cell_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> commits_;
  std::uint64_t rotation_wait_ns_;
};

}  // namespace tbwf::rt
