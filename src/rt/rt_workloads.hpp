// Canonical supervised rt workloads, shared by the fault-sweep tests
// (rt conformance) and the recovery benches (E13).
//
// LeasedCounterWorkload is the full hardened hot path of this PR wired
// together: a fenced LeaseElector whose term is calibrated from
// observed op latency (LeaseCalibrator), an abortable try-lock cell
// that storms can be injected into, bounded backoff for aborted
// operations (registers::BoundedBackoff), fault points INSIDE the
// operation so kills land mid-commit, and the canonical-use rotation
// discipline of Definition 6: a finishing leader waits until someone
// else has held the lease (the fence advanced) -- or a bounded solo
// timeout -- before competing again, which is what spreads completions
// across threads and makes the per-thread wait-freedom check of the
// conformance checker meaningful on real threads.
// Each worker also keeps a LinkHealth view of the shared cell
// (omega/link_health.hpp with rt-scaled thresholds): a long abort
// streak -- a register jam, not contention -- trips quarantine, after
// which the worker paces recovery probes on the health machine's
// BoundedBackoff instead of hammering a dead register; the first
// successful operation heals it and the worker rejoins the rotation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "omega/link_health.hpp"
#include "registers/abort_policy.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_tbwf.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

/// LinkHealth thresholds scaled for rt operation rates: ops are
/// microsecond-scale against millisecond fault windows, so suspicion
/// and confirmation trip within a window, and probe pacing is in
/// yields, not steps.
inline omega::LinkHealthOptions rt_cell_health_options() {
  omega::LinkHealthOptions opt;
  opt.suspect_after = 8;
  opt.jam_rounds = 8;
  opt.heal_rounds = 1;
  opt.write_jam_rounds = 64;
  opt.probe_backoff = {/*base=*/4, /*cap=*/64, /*free_retries=*/0};
  return opt;
}

class LeasedCounterWorkload {
 public:
  explicit LeasedCounterWorkload(int nthreads,
                                 std::uint64_t rotation_wait_ns = 200000)
      // Time through the shared seam: identical to raw steady_clock on
      // unbound threads, per-plan distorted once the supervisor binds
      // its workers to an armed FaultClock.
      : elector_(std::chrono::microseconds(500), &FaultClock::read),
        cell_(0),
        commits_(std::make_unique<
                 util::CachelinePadded<std::atomic<std::uint64_t>>[]>(
            static_cast<std::size_t>(nthreads))),
        health_(static_cast<std::size_t>(nthreads),
                omega::LinkHealth(rt_cell_health_options())),
        rotation_wait_ns_(rotation_wait_ns) {
    elector_.set_calibrator(&calibrator_);
    // relaxed: pre-spawn initialization; the thread launch publishes it.
    for (int t = 0; t < nthreads; ++t) {
      commits_[t]->store(0, std::memory_order_relaxed);
    }
  }

  /// Expose the cell to the supervisor's storm injector. Call before
  /// RtSupervisor::run().
  void attach_storms(RtSupervisor& supervisor) {
    cell_.set_injector(&supervisor.injector());
  }

  /// The restart hook that makes revival safe: fence off any lease the
  /// dead incarnation still holds before its replacement runs.
  std::function<void(std::uint32_t, std::uint32_t)> on_restart() {
    return [this](std::uint32_t tid, std::uint32_t) {
      elector_.revoke(tid);
    };
  }

  RtWorkerBody body() {
    return [this](RtWorkerContext& ctx) { run_worker(ctx); };
  }

  LeaseElector& elector() { return elector_; }
  LeaseCalibrator& calibrator() { return calibrator_; }

  std::uint64_t commits(std::uint32_t tid) const {
    // relaxed monotone counter: exact only after run() joined.
    return commits_[tid]->load(std::memory_order_relaxed);
  }

  /// tid's health view of the shared cell. Quiescent-only for readers
  /// other than the worker thread itself.
  const omega::LinkHealth& cell_health(std::uint32_t tid) const {
    return health_[tid];
  }

  /// Export every worker's cell-health counters (rt.link.cell.t<i>.*).
  /// Quiescent-only (after RtSupervisor::run returned).
  void export_health_metrics(util::Counters& metrics) const {
    for (std::size_t t = 0; t < health_.size(); ++t) {
      health_[t].export_metrics(metrics,
                                "rt.link.cell.t" + std::to_string(t));
    }
  }

  /// Quiescent-only (after RtSupervisor::run returned).
  std::int64_t value() {
    for (;;) {
      auto v = cell_.read();
      if (v.has_value()) return *v;
    }
  }

 private:
  void run_worker(RtWorkerContext& ctx) {
    const std::uint32_t tid = ctx.tid();
    const registers::BoundedBackoff backoff{
        {.base = 1, .cap = 32, .free_retries = 4}};
    omega::LinkHealth& health = health_[tid];
    // Abort pacing: contention-scale backoff while healthy, the health
    // machine's decorrelating/probe schedule once the cell looks
    // jammed (a dead register should cost O(backoff cap) probes, not a
    // hot retry loop that never notices the heal).
    const auto abort_pace = [&](int attempt) {
      if (health.quarantined()) return health.probe_delay();
      if (const auto spaced = health.suspect_delay(); spaced > 0) {
        return spaced;
      }
      return static_cast<std::int64_t>(backoff.delay(attempt));
    };
    int lost_elections = 0;
    while (!ctx.should_stop()) {
      ctx.fault_point();
      std::uint64_t token = 0;
      if (!elector_.try_lead(tid, &token)) {
        yield_for(backoff.delay(lost_elections++));
        continue;
      }
      lost_elections = 0;
      ctx.record(RtEventKind::kLeaseAcquire, token);
      ctx.op_start();
      const std::uint64_t op_begin = ctx.now_ns();
      bool committed = false;
      for (int attempt = 0; !committed && !ctx.should_stop(); ++attempt) {
        ctx.fault_point();
        // Renew the lease (same tenure, same token); a false return
        // means it was stolen or revoked -- abandon the operation.
        if (!elector_.try_lead(tid, &token)) {
          ctx.record(RtEventKind::kStaleFenceBlocked);
          break;
        }
        const auto v = cell_.read();
        if (!v.has_value()) {
          ctx.record(RtEventKind::kAbort);
          health.observe_abort_round();
          yield_for(abort_pace(attempt));
          continue;
        }
        ctx.fault_point();  // mid-operation danger zone: kills land here
        if (!elector_.validate(tid, token)) {
          ctx.record(RtEventKind::kStaleFenceBlocked);
          break;
        }
        if (!cell_.write(*v + 1)) {
          ctx.record(RtEventKind::kAbort);
          health.observe_abort_round();
          yield_for(abort_pace(attempt));
          continue;
        }
        committed = true;
        health.observe_fresh();
        commits_[tid]->fetch_add(1, std::memory_order_relaxed);
        calibrator_.observe(ctx.now_ns() - op_begin);
        ctx.op_complete(static_cast<std::uint64_t>(*v + 1));
      }
      const std::uint64_t fence_after = elector_.fence();
      elector_.release(tid);
      ctx.record(RtEventKind::kLeaseRelease);
      // Canonical-use rotation: wait until another thread has held the
      // lease, or a bounded timeout when running solo.
      const std::uint64_t wait_begin = ctx.now_ns();
      while (!ctx.should_stop() && elector_.fence() == fence_after &&
             ctx.now_ns() - wait_begin < rotation_wait_ns_) {
        ctx.fault_point();
        std::this_thread::yield();
      }
    }
  }

  static void yield_for(std::uint64_t yields) {
    for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
  }
  static void yield_for(std::int64_t yields) {
    yield_for(static_cast<std::uint64_t>(yields < 0 ? 0 : yields));
  }

  LeaseElector elector_;
  LeaseCalibrator calibrator_;
  RtAbortableReg<std::int64_t> cell_;
  /// Striped: each worker bumps its own line at commit rate.
  std::unique_ptr<util::CachelinePadded<std::atomic<std::uint64_t>>[]>
      commits_;
  /// Per-thread health view of the shared cell; health_[t] is written
  /// only by worker t and read by others only after run() joined.
  std::vector<omega::LinkHealth> health_;
  std::uint64_t rotation_wait_ns_;
};

}  // namespace tbwf::rt
