// Real-threads port of the query-abortable universal construction.
//
// The same protocol as src/qa/qa_universal.hpp (promise / accept /
// decide per slot over single-writer records, abort on contention,
// adoption of floating accepts), executed by std::threads over try-lock
// abortable registers (RtAbortableReg). A base-register abort -- the
// cell was busy -- simply aborts the attempt, exactly like the
// simulator's AbortableBase. Solo operations never abort (an
// uncontended try-lock always succeeds).
//
// Threading model: thread t owns REG[t] (single writer) and its slice
// of the per-thread protocol state; cross-thread communication goes
// exclusively through the registers. Per-thread slices are padded to
// cache lines to avoid false sharing.
#pragma once

#include <cstdint>
#include <new>
#include <optional>
#include <vector>

#include "qa/qa_object.hpp"
#include "qa/sequential_type.hpp"
#include "rt/rt_registers.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace tbwf::rt {

template <qa::Sequential S>
class RtQaUniversal {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Response = qa::QaResponse<Result>;
  using Tid = std::uint32_t;

  struct Token {
    std::uint64_t seq = 0;
    std::uint64_t round = 0;
    Tid tid = 0;

    bool gt(const Token& other) const {
      return round > other.round || (round == other.round && tid > other.tid);
    }
  };

  struct StateRec {
    std::uint64_t seq = 0;
    State state{};
    std::vector<std::uint64_t> last_uid;
    std::vector<Result> last_result;
  };

  struct Record {
    Token promised;
    Token accepted;
    StateRec accepted_state;
    StateRec decided;
  };

  RtQaUniversal(int nthreads, State initial) : n_(nthreads) {
    TBWF_ASSERT(nthreads >= 1, "need at least one thread");
    StateRec genesis;
    genesis.seq = 0;
    genesis.state = std::move(initial);
    genesis.last_uid.assign(n_, 0);
    genesis.last_result.assign(n_, Result{});
    Record init;
    init.decided = genesis;
    init.accepted_state = genesis;
    regs_.reserve(n_);
    locals_ = std::vector<Local>(n_);
    for (int t = 0; t < n_; ++t) {
      regs_.emplace_back(std::make_unique<RtAbortableReg<Record>>(init));
      locals_[t].mine = init;
      locals_[t].local_decided = genesis;
    }
  }

  /// Apply `op`; returns bottom under contention. Called by thread
  /// `tid` only (each tid must be driven by a single thread).
  Response invoke(Tid tid, Op op) {
    Local& me = locals_[tid];
    const std::uint64_t uid = ++me.uid_counter * n_ + tid;
    me.last_real_uid = uid;
    me.pending_uid = 0;
    me.pending_slot = 0;

    Proposal proposal{true, std::move(op), uid};
    for (int attempt = 0; attempt < 2; ++attempt) {
      const AttemptOutcome out = attempt_once(tid, proposal);
      switch (out.kind) {
        case AttemptKind::DecidedSelf:
          return Response::make_ok(out.result);
        case AttemptKind::DecidedOther:
          continue;
        case AttemptKind::AbortNoEffect:
        case AttemptKind::AbortMaybeEffect:
          return Response::make_bottom();
      }
    }
    return Response::make_bottom();
  }

  /// Fate of tid's last invoke (Ok / F / bottom).
  Response query(Tid tid) {
    Local& me = locals_[tid];
    const std::uint64_t uid = me.last_real_uid;
    if (uid == 0) return Response::make_not_applied();

    Proposal noop{false, Op{}, 0};
    (void)attempt_once(tid, noop);

    auto recs = read_all(tid);
    if (!recs.has_value()) return Response::make_bottom();
    const StateRec& d = frontier(*recs, tid);
    if (d.last_uid[tid] == uid) {
      return Response::make_ok(d.last_result[tid]);
    }
    if (me.pending_uid != uid) return Response::make_not_applied();
    if (d.seq >= me.pending_slot) return Response::make_not_applied();
    return Response::make_bottom();
  }

  /// One try-lock read pass over all records: the decided frontier as
  /// currently visible to `tid` (nullopt if a base read aborted).
  /// Refreshes tid's local decided cache. Called by tid's thread only.
  std::optional<StateRec> read_frontier(Tid tid) {
    auto recs = read_all(tid);
    if (!recs.has_value()) return std::nullopt;
    StateRec d = frontier(*recs, tid);
    Local& me = locals_[tid];
    if (d.seq > me.local_decided.seq) me.local_decided = d;
    return d;
  }

  /// The highest decided record tid itself has observed. Called by
  /// tid's thread only (per-thread slice, no synchronization).
  const StateRec& local_decided(Tid tid) const {
    return locals_[tid].local_decided;
  }

  /// Best-effort snapshot of the decided frontier (retries briefly).
  StateRec frontier_snapshot() {
    StateRec best = locals_[0].local_decided;
    for (int t = 0; t < n_; ++t) {
      if (locals_[t].local_decided.seq > best.seq) {
        best = locals_[t].local_decided;
      }
      for (int tries = 0; tries < 64; ++tries) {
        auto r = regs_[t]->read();
        if (r.has_value()) {
          if (r->decided.seq > best.seq) best = r->decided;
          break;
        }
      }
    }
    return best;
  }

  int n() const { return n_; }

 private:
  struct Proposal {
    bool has_op = false;
    Op op{};
    std::uint64_t uid = 0;
  };
  enum class AttemptKind {
    DecidedSelf,
    DecidedOther,
    AbortNoEffect,
    AbortMaybeEffect,
  };
  struct AttemptOutcome {
    AttemptKind kind = AttemptKind::AbortNoEffect;
    Result result{};
  };

  struct alignas(util::kCacheLineSize) Local {
    Record mine;
    StateRec local_decided;
    std::uint64_t round = 0;
    std::uint64_t uid_counter = 0;
    std::uint64_t last_real_uid = 0;
    std::uint64_t pending_uid = 0;
    std::uint64_t pending_slot = 0;
  };

  std::optional<std::vector<Record>> read_all(Tid self) {
    std::vector<Record> recs(n_);
    for (int t = 0; t < n_; ++t) {
      if (t == static_cast<int>(self)) {
        recs[t] = locals_[self].mine;
        continue;
      }
      auto r = regs_[t]->read();
      if (!r.has_value()) return std::nullopt;
      recs[t] = std::move(*r);
    }
    return recs;
  }

  const StateRec& frontier(const std::vector<Record>& recs,
                           Tid self) const {
    const StateRec* best = &locals_[self].local_decided;
    for (const auto& rec : recs) {
      if (rec.decided.seq > best->seq) best = &rec.decided;
    }
    return *best;
  }

  bool conflicts(const std::vector<Record>& recs, Tid self,
                 const Token& me) const {
    for (int t = 0; t < n_; ++t) {
      if (t == static_cast<int>(self)) continue;
      const Record& rec = recs[t];
      if (rec.decided.seq >= me.seq) return true;
      if (rec.promised.seq > me.seq) return true;
      if (rec.promised.seq == me.seq && rec.promised.gt(me)) return true;
      if (rec.accepted.seq > me.seq) return true;
      if (rec.accepted.seq == me.seq && rec.accepted.gt(me)) return true;
    }
    return false;
  }

  bool publish(Tid tid) { return regs_[tid]->write(locals_[tid].mine); }

  AttemptOutcome attempt_once(Tid tid, const Proposal& proposal) {
    Local& me = locals_[tid];
    AttemptOutcome out;

    auto recs1 = read_all(tid);
    if (!recs1.has_value()) return out;  // AbortNoEffect
    StateRec d = frontier(*recs1, tid);
    if (d.seq > me.local_decided.seq) me.local_decided = d;
    const Token token{d.seq + 1, ++me.round, tid};

    me.mine.promised = token;
    me.mine.decided = me.local_decided;
    if (!publish(tid)) return out;

    auto recs2 = read_all(tid);
    if (!recs2.has_value() || conflicts(*recs2, tid, token)) return out;

    const Record* adopt = nullptr;
    for (int t = 0; t < n_; ++t) {
      if (t == static_cast<int>(tid)) continue;
      const Record& rec = (*recs2)[t];
      if (rec.accepted.seq == token.seq &&
          (adopt == nullptr || rec.accepted.gt(adopt->accepted))) {
        adopt = &rec;
      }
    }

    StateRec value;
    bool adopted = false;
    if (adopt != nullptr) {
      value = adopt->accepted_state;
      adopted = true;
    } else {
      value = d;
      value.seq = token.seq;
      if (proposal.has_op) {
        value.last_result[tid] = S::apply(value.state, proposal.op);
        value.last_uid[tid] = proposal.uid;
      }
    }

    me.mine.accepted = token;
    me.mine.accepted_state = value;
    if (proposal.has_op && !adopted) {
      me.pending_uid = proposal.uid;
      me.pending_slot = token.seq;
    }
    if (!publish(tid)) {
      out.kind = AttemptKind::AbortMaybeEffect;
      return out;
    }

    auto recs3 = read_all(tid);
    if (!recs3.has_value() || conflicts(*recs3, tid, token)) {
      out.kind = AttemptKind::AbortMaybeEffect;
      return out;
    }

    me.local_decided = value;
    me.mine.decided = value;
    (void)publish(tid);

    if (adopted) {
      out.kind = AttemptKind::DecidedOther;
    } else {
      out.kind = AttemptKind::DecidedSelf;
      if (proposal.has_op) out.result = value.last_result[tid];
    }
    return out;
  }

  int n_;
  std::vector<std::unique_ptr<RtAbortableReg<Record>>> regs_;
  std::vector<Local> locals_;
};

}  // namespace tbwf::rt
