// Per-link health scoring and quarantine for the Section 6 channels.
//
// The fault layer (registers/reg_faults.hpp) can degrade a SWSR link in
// ways a spec-conforming abortable register never would: jam it (every
// op aborts, solo included), drop or tear writes, serve stale reads.
// Each channel endpoint keeps one LinkHealth per peer link and feeds it
// classified observations; the machine decides when the link is beyond
// the adversary the paper budgets for and must be quarantined, and when
// a quarantined link has demonstrably healed and may rejoin.
//
// Evidence is graded by soundness:
//
//   corrupt / regression  a checksum mismatch or a sequence number going
//                         backwards cannot be produced by contention --
//                         only by a degraded medium. A handful of these
//                         trips quarantine.
//   all-abort rounds      aborts are exactly what a legitimate adversary
//                         produces (problem (b) of Section 6) -- the
//                         maximal adversary aborts every contended op
//                         forever, so NO count of back-to-back aborts
//                         is sound on its own. Instead, a long streak
//                         raises *suspicion*, and while suspicious the
//                         reader spaces its polls on a growing backoff:
//                         a spec register must eventually serve a
//                         near-solo spaced read (the writer's individual
//                         writes are short), while a jam keeps aborting
//                         even decorrelated probes. Only a further
//                         streak of SPACED all-abort rounds confirms the
//                         jam. Stale-but-valid rounds break both: a
//                         same-stamp read is Figure 5's evidence of a
//                         slow WRITER over a working medium.
//   solo write aborts     on the writer side a long streak of failed
//                         writes is sound too -- the spec guarantees
//                         solo writes succeed, and the Figure 4/5 retry
//                         disciplines guarantee eventual solo runs.
//
// While quarantined, a reader paces recovery probes on a BoundedBackoff
// schedule instead of the adaptive Figure 5 timeout (which would grow
// without bound against a jam and make any heal invisible), and heals
// after `heal_rounds` consecutive sound fresh rounds.
//
// Quarantine is bookkeeping plus *read-side* demotion only. Writer-side
// state never changes the writer's operation cadence: the Figure 4
// retry writes double as recovery probes, and ContentionSchedule-style
// adversaries key on which processes have pending operations, so a
// writer that went quiet under quarantine would corrupt the very
// timeliness measurements the conformance checker grades.
#pragma once

#include <cstdint>
#include <string>

#include "registers/abort_policy.hpp"
#include "util/metrics.hpp"

namespace tbwf::omega {

enum class LinkState : std::uint8_t { Healthy, Quarantined };

inline const char* to_string(LinkState s) {
  return s == LinkState::Healthy ? "healthy" : "quarantined";
}

struct LinkHealthOptions {
  /// Consecutive all-abort polling rounds before the link becomes
  /// jam-suspect and polls start spacing out on probe_backoff.
  std::int64_t suspect_after = 64;
  /// Further consecutive all-abort rounds -- each now a spaced,
  /// decorrelated probe -- that confirm the jam and trip quarantine.
  std::int64_t jam_rounds = 48;
  /// Sound medium-fault observations (corrupt, regression) that trip
  /// quarantine. Small: contention cannot produce even one.
  std::int64_t fault_threshold = 4;
  /// Consecutive sound fresh rounds, while quarantined, that heal.
  int heal_rounds = 2;
  /// Consecutive failed writes before the writer side flags the link.
  std::int64_t write_jam_rounds = 256;
  /// Pacing for jam-suspect polls and, once quarantined, for recovery
  /// probes (reader side).
  registers::BoundedBackoff::Options probe_backoff{
      /*base=*/64, /*cap=*/4096, /*free_retries=*/0};
};

class LinkHealth {
 public:
  LinkHealth() : LinkHealth(LinkHealthOptions{}) {}
  explicit LinkHealth(const LinkHealthOptions& opt)
      : opt_(opt), pacer_(opt.probe_backoff) {}

  // -- reader-side observations, one round each ------------------------------
  /// Every read of the round aborted: possible jam.
  void observe_abort_round() {
    ++abort_rounds_;
    if (state_ == LinkState::Healthy) {
      if (++abort_streak_ >= opt_.suspect_after + opt_.jam_rounds) trip();
    } else {
      heal_streak_ = 0;
    }
  }

  /// Extra poll spacing while jam-suspect: 0 when the link is not under
  /// suspicion, else a backoff delay that grows with the spaced streak.
  /// Spacing decorrelates the reader from a timely writer's writes --
  /// the judgment itself (abort = fresh) is NOT touched until the jam
  /// is confirmed.
  std::int64_t suspect_delay() {
    if (state_ != LinkState::Healthy || abort_streak_ < opt_.suspect_after) {
      return 0;
    }
    const auto spaced = abort_streak_ - opt_.suspect_after;
    const std::uint64_t d =
        pacer_.delay(spaced > 62 ? 62 : static_cast<int>(spaced));
    return d == 0 ? 1 : static_cast<std::int64_t>(d);
  }
  /// Valid but unchanged stamp(s): the writer is slow, the medium works.
  void observe_stale_round() {
    ++stale_rounds_;
    abort_streak_ = 0;
    if (state_ == LinkState::Quarantined) heal_streak_ = 0;
  }
  /// Sound fresh round: valid checksums, advancing stamps.
  void observe_fresh() {
    ++fresh_rounds_;
    abort_streak_ = 0;
    if (state_ == LinkState::Quarantined) {
      ++probe_successes_;
      if (++heal_streak_ >= opt_.heal_rounds) heal();
    }
  }
  /// A payload failed its checksum (torn medium).
  void observe_corrupt() {
    ++corrupt_;
    note_sound_fault();
  }
  /// A sequence number went backwards (stale medium).
  void observe_regression() {
    ++regressions_;
    note_sound_fault();
  }

  /// Timer reload for the next recovery probe; call only while
  /// quarantined. Paced by BoundedBackoff so a dead link costs O(cap)
  /// reads per window instead of a read per round.
  std::int64_t probe_delay() {
    ++probes_;
    const std::uint64_t d = pacer_.delay(probe_attempt_);
    if (probe_attempt_ < 62) ++probe_attempt_;
    return d == 0 ? 1 : static_cast<std::int64_t>(d);
  }

  // -- writer-side observations ----------------------------------------------
  void note_write(bool ok) {
    if (ok) {
      write_streak_ = 0;
      if (state_ == LinkState::Quarantined) heal();
    } else {
      ++write_aborts_;
      if (state_ == LinkState::Healthy &&
          ++write_streak_ >= opt_.write_jam_rounds) {
        trip();
      }
    }
  }

  // -- introspection ----------------------------------------------------------
  LinkState state() const { return state_; }
  bool quarantined() const { return state_ == LinkState::Quarantined; }
  std::uint64_t corrupt() const { return corrupt_; }
  std::uint64_t regressions() const { return regressions_; }
  std::uint64_t abort_rounds() const { return abort_rounds_; }
  std::uint64_t stale_rounds() const { return stale_rounds_; }
  std::uint64_t fresh_rounds() const { return fresh_rounds_; }
  std::uint64_t write_aborts() const { return write_aborts_; }
  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t probe_successes() const { return probe_successes_; }
  const LinkHealthOptions& options() const { return opt_; }

  /// Export counters under `prefix` (e.g. "link.msg.0.1"), suffixing
  /// .corrupt .regressions .abort_rounds .stale_rounds .quarantines
  /// .recoveries .probes .probe_successes .write_aborts.
  void export_metrics(util::Counters& metrics,
                      const std::string& prefix) const {
    metrics.inc(prefix + ".corrupt", corrupt_);
    metrics.inc(prefix + ".regressions", regressions_);
    metrics.inc(prefix + ".abort_rounds", abort_rounds_);
    metrics.inc(prefix + ".stale_rounds", stale_rounds_);
    metrics.inc(prefix + ".quarantines", quarantines_);
    metrics.inc(prefix + ".recoveries", recoveries_);
    metrics.inc(prefix + ".probes", probes_);
    metrics.inc(prefix + ".probe_successes", probe_successes_);
    metrics.inc(prefix + ".write_aborts", write_aborts_);
  }

 private:
  void note_sound_fault() {
    abort_streak_ = 0;
    if (state_ == LinkState::Healthy) {
      if (++fault_evidence_ >= opt_.fault_threshold) trip();
    } else {
      heal_streak_ = 0;
    }
  }
  void trip() {
    state_ = LinkState::Quarantined;
    ++quarantines_;
    heal_streak_ = 0;
    probe_attempt_ = 0;
  }
  void heal() {
    state_ = LinkState::Healthy;
    ++recoveries_;
    abort_streak_ = 0;
    write_streak_ = 0;
    fault_evidence_ = 0;
    heal_streak_ = 0;
    probe_attempt_ = 0;
  }

  LinkHealthOptions opt_;
  registers::BoundedBackoff pacer_;
  LinkState state_ = LinkState::Healthy;

  std::int64_t abort_streak_ = 0;
  std::int64_t write_streak_ = 0;
  std::int64_t fault_evidence_ = 0;
  int heal_streak_ = 0;
  int probe_attempt_ = 0;

  std::uint64_t corrupt_ = 0;
  std::uint64_t regressions_ = 0;
  std::uint64_t abort_rounds_ = 0;
  std::uint64_t stale_rounds_ = 0;
  std::uint64_t fresh_rounds_ = 0;
  std::uint64_t write_aborts_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t probe_successes_ = 0;
};

}  // namespace tbwf::omega
