// Figure 5: communicating a heartbeat over abortable registers.
//
// A single abortable register cannot carry a heartbeat: all reads may
// abort forever (problem (b) in Section 6), and an abort only proves the
// writer is *alive*, not that it is timely -- a slow writer whose single
// write straddles many reads would abort them all. The paper's fix is
// two registers written in alternation: the reader deems the writer
// q-timely only if, for BOTH registers, the read aborted or returned a
// fresh value. A writer stuck inside one register's write cannot
// disturb the other register, whose read then returns a stale value and
// exposes the slowness.
//
// Hardening against a degraded medium (registers/reg_faults.hpp): the
// counter travels as an HbStamp (counter + checksum, omega/wire.hpp).
// A stamp that fails its checksum or regresses below one this reader
// already accepted cannot come from contention -- it is evidence about
// the MEDIUM, never about the writer -- so it counts as NOT fresh (a
// degraded link must not prove timeliness) and feeds the per-link
// LinkHealth score. A link judged beyond the spec's adversary (sound
// medium faults, or a jam-length streak of all-abort rounds) is
// quarantined: the peer is dropped from activeSet (Figure 6 then
// punishes it through the counter/actrTo path) and the link is probed
// on a BoundedBackoff schedule until it demonstrably heals, at which
// point the peer rejoins. Fault-free behavior is unchanged.
//
// tests/hb_channel_test.cpp includes the one-register ablation showing
// precisely this failure; bench_abortable_comm quantifies it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "omega/link_health.hpp"
#include "omega/wire.hpp"
#include "registers/abort_policy.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {

using HbCounter = std::int64_t;

/// Per-process endpoint for the Figure 5 procedures.
struct HbEndpoint {
  using Reg = sim::AbortableReg<HbStamp>;

  sim::Pid self = sim::kNoPid;
  std::vector<Reg> out1, out2;  ///< HbRegister1/2[self,q]
  std::vector<Reg> in1, in2;    ///< HbRegister1/2[q,self]

  std::vector<std::int64_t> hb_timeout;
  std::vector<std::int64_t> hb_timer;
  /// Stored read results; nullopt renders the paper's bottom.
  std::vector<std::optional<HbStamp>> hb1, hb2, prev1, prev2;
  /// Highest VALID counter accepted per register; regressions below
  /// these are medium faults, not writer behavior.
  std::vector<HbCounter> seen1, seen2;
  HbCounter send_counter = 0;
  /// activeSet: self is a permanent member (initial state in Figure 5).
  std::vector<bool> active_set;

  /// Per-link health; reader-side quarantine demotes the peer and paces
  /// recovery probes (see link_health.hpp).
  std::vector<LinkHealth> in_health, out_health;

  /// Bulk-skip fast path for ReceiveHeartbeat, same contract as
  /// MsgEndpoint::sweep_skip_credit: after a sweep in which every
  /// per-peer timer (including probe/suspect delays, which also land in
  /// hb_timer) stays >= 2, the next min-1 invocations decrement timers
  /// and nothing else, so they are satisfied in O(1) and the owed
  /// decrements are paid back before the next real sweep. The poll
  /// schedule -- and with it every activeSet transition -- is
  /// bit-identical.
  std::int64_t sweep_skip_credit = 0;  ///< invocations left to skip
  std::int64_t sweep_skip_debt = 0;    ///< decrements owed to each timer

  void init(int n, sim::Pid self_pid, const LinkHealthOptions& health = {}) {
    self = self_pid;
    out1.resize(n);
    out2.resize(n);
    in1.resize(n);
    in2.resize(n);
    hb_timeout.assign(n, 1);
    hb_timer.assign(n, 1);
    hb1.assign(n, HbStamp::make(0));
    hb2.assign(n, HbStamp::make(0));
    prev1.assign(n, HbStamp::make(0));
    prev2.assign(n, HbStamp::make(0));
    seen1.assign(n, 0);
    seen2.assign(n, 0);
    active_set.assign(n, false);
    active_set[self] = true;
    in_health.assign(n, LinkHealth(health));
    out_health.assign(n, LinkHealth(health));
    sweep_skip_credit = 0;
    sweep_skip_debt = 0;
  }

  void export_metrics(util::Counters& metrics,
                      const std::string& prefix = "link.hb") const {
    for (std::size_t q = 0; q < in_health.size(); ++q) {
      if (static_cast<sim::Pid>(q) == self) continue;
      in_health[q].export_metrics(
          metrics, prefix + ".in." + std::to_string(self) + "." +
                       std::to_string(q));
      out_health[q].export_metrics(
          metrics, prefix + ".out." + std::to_string(self) + "." +
                       std::to_string(q));
    }
  }
};

/// Wire the full mesh of paired SWSR heartbeat registers.
std::vector<HbEndpoint> make_hb_mesh(sim::World& world,
                                     registers::AbortPolicy* policy,
                                     const std::string& prefix = "Hb",
                                     const LinkHealthOptions& health = {});

/// Figure 5, SendHeartbeat(dest): write the incremented counter to both
/// registers towards every q with dest[q] set.
sim::Co<void> send_heartbeat(sim::SimEnv& env, HbEndpoint& ep,
                             const std::vector<bool>& dest);

/// Figure 5, ReceiveHeartbeat(): update ep.active_set from the paired
/// registers with adaptive per-peer timeouts.
sim::Co<void> receive_heartbeat(sim::SimEnv& env, HbEndpoint& ep);

}  // namespace tbwf::omega

namespace tbwf::omega {

/// ABLATION -- the broken one-register heartbeat scheme that Section 6
/// explains and rejects: a reader that treats "my read aborted" as
/// evidence of timeliness can be fooled forever by a writer that is
/// merely *alive inside one slow write* (every read overlaps the stuck
/// write and aborts). Kept as a library citizen so tests and
/// bench_abortable_comm can quantify the failure against Figure 5's
/// two-register scheme.
struct SingleRegHbReceiver {
  sim::AbortableReg<HbStamp> in;
  std::optional<HbStamp> prev = HbStamp::make(0);
  std::optional<HbStamp> last = HbStamp::make(0);
  std::int64_t timeout = 1;
  std::int64_t timer = 1;
  bool active = false;
};

inline sim::Co<void> receive_heartbeat_single(sim::SimEnv& env,
                                              SingleRegHbReceiver& r) {
  if (r.timer >= 1) --r.timer;
  if (r.timer == 0) {
    r.timer = r.timeout;
    r.prev = r.last;
    r.last = co_await env.read(r.in);
    if (!r.last.has_value() || r.last != r.prev) {
      r.active = true;  // abort-or-fresh: the flawed judgment
    } else {
      r.active = false;
      ++r.timeout;
    }
  }
}

}  // namespace tbwf::omega
