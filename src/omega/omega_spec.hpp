// Run-checkers for the Omega-Delta specification (Definition 5 and
// Theorem 7) over finite simulated runs.
//
// "There is a time after which C" is verified as "C holds at every
// sampled point in [check_from, end)"; the caller picks check_from long
// enough after the last input perturbation for the algorithm to have
// stabilized (every experiment reports its stabilization margin).
#pragma once

#include <string>
#include <vector>

#include "omega/omega.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {

/// Records candidate/leader trajectories for every process in a world.
/// Construct *before* running; the OmegaIO objects must be stable.
class OmegaRecord {
 public:
  OmegaRecord(sim::World& world, const std::vector<OmegaIO*>& ios);

  const sim::Trajectory<bool>& candidate(sim::Pid p) const {
    return candidate_[p];
  }
  const sim::Trajectory<sim::Pid>& leader(sim::Pid p) const {
    return leader_[p];
  }
  int n() const { return static_cast<int>(leader_.size()); }

 private:
  std::vector<sim::Trajectory<bool>> candidate_;
  std::vector<sim::Trajectory<sim::Pid>> leader_;
};

/// Declared candidate classification of a run (Definition 4). Tests and
/// benches know the pattern they drove, so they declare it rather than
/// inferring limit behaviour from a finite prefix.
struct CandidateClassification {
  std::vector<sim::Pid> pcandidates;  ///< eventually always candidates
  std::vector<sim::Pid> rcandidates;  ///< candidates infinitely often, on/off
  std::vector<sim::Pid> ncandidates;  ///< eventually never candidates
};

struct SpecCheckResult {
  bool ok = false;
  sim::Pid elected = kNoLeader;  ///< the l discovered (if property 1 applies)
  std::vector<std::string> violations;

  std::string summary() const;
};

/// Verify Definition 5 over the suffix [check_from, end of run).
/// `timely` is the set of processes timely in the run (from the trace or
/// the schedule's guarantee). If `require_leader_permanent` is set, also
/// require l to be a permanent candidate (Theorem 7, canonical use).
///
/// Finite-run caveat: "there is a time after which leader_p = l" cannot
/// be falsified by a process that took (almost) no steps in the checked
/// suffix -- its output variable is frozen, and the infinite run would
/// let it catch up. Pass the run's `trace` to exempt such processes
/// (fewer than `min_suffix_steps` steps after check_from) from the
/// convergence requirements; nullptr disables the exemption.
SpecCheckResult check_omega_spec(const OmegaRecord& record,
                                 const CandidateClassification& classes,
                                 const std::vector<sim::Pid>& timely,
                                 sim::Step check_from,
                                 bool require_leader_permanent = false,
                                 const sim::Trace* trace = nullptr,
                                 sim::Step min_suffix_steps = 1000);

}  // namespace tbwf::omega
