// Figure 4: communicating the final value of a variable that eventually
// stops changing, over single-writer single-reader abortable registers.
//
// Writer discipline (WriteMsgs): whenever the source variable changes, p
// repeatedly writes the pending value to MsgRegister[p,q] until one write
// succeeds; only then does it pick up a newer value. Reader discipline
// (ReadMsgs): q polls MsgRegister[p,q] every readTimeout[p] invocations;
// an aborted or unchanged read grows the timeout by one (q suspects its
// reads are colliding with p's writes and backs off), a fresh value
// resets it to 1.
//
// Guarantee (used in Section 6): if p is q-timely and the source variable
// stops changing, then q eventually learns its final value -- q's backoff
// eventually leaves a window in which p's write runs solo, and solo
// operations on abortable registers never abort. If p is not q-timely or
// the variable changes forever, nothing is guaranteed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "registers/abort_policy.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"

namespace tbwf::omega {

/// Per-process endpoint state for the Figure 4 procedures. Index arrays
/// by peer pid; the self slot is unused.
template <class T>
struct MsgEndpoint {
  sim::Pid self = sim::kNoPid;
  std::vector<sim::AbortableReg<T>> out;  ///< MsgRegister[self,q], writer self
  std::vector<sim::AbortableReg<T>> in;   ///< MsgRegister[q,self], reader self

  std::vector<T> msg_curr;                ///< value being pushed to q
  std::vector<T> prev_msg_from;           ///< last successfully read from q
  std::vector<std::int64_t> read_timer;
  std::vector<std::int64_t> read_timeout;
  std::vector<bool> prev_write_done;

  void init(int n, sim::Pid self_pid, const T& initial) {
    self = self_pid;
    out.resize(n);
    in.resize(n);
    msg_curr.assign(n, initial);
    prev_msg_from.assign(n, initial);
    read_timer.assign(n, 1);
    read_timeout.assign(n, 1);
    prev_write_done.assign(n, true);
  }
};

/// Wire a full mesh of SWSR abortable MsgRegisters among n processes.
/// Every endpoint's out[q] is the same register as q's in[p].
template <class T>
std::vector<MsgEndpoint<T>> make_msg_mesh(sim::World& world,
                                          registers::AbortPolicy* policy,
                                          const T& initial,
                                          const std::string& prefix = "Msg") {
  const int n = world.n();
  std::vector<MsgEndpoint<T>> endpoints(n);
  for (sim::Pid p = 0; p < n; ++p) endpoints[p].init(n, p, initial);
  for (sim::Pid p = 0; p < n; ++p) {
    for (sim::Pid q = 0; q < n; ++q) {
      if (p == q) continue;
      auto reg = world.make_abortable<T>(
          prefix + "[" + std::to_string(p) + "," + std::to_string(q) + "]",
          initial, policy, /*writer=*/p, /*reader=*/q);
      endpoints[p].out[q] = reg;
      endpoints[q].in[p] = reg;
    }
  }
  return endpoints;
}

/// Figure 4, WriteMsgs(msgTo): push msg_to[q] towards every q != self.
/// Returns nothing; the per-peer success state is ep.prev_write_done.
template <class T>
sim::Co<void> write_msgs(sim::SimEnv& env, MsgEndpoint<T>& ep,
                         const std::vector<T>& msg_to) {
  const int n = env.n();
  TBWF_ASSERT(static_cast<int>(msg_to.size()) == n, "msg_to size mismatch");
  for (sim::Pid q = 0; q < n; ++q) {                              // line 2
    if (q == ep.self) continue;
    if (!ep.prev_write_done[q] || !(ep.msg_curr[q] == msg_to[q])) {  // line 3
      if (ep.prev_write_done[q]) ep.msg_curr[q] = msg_to[q];      // line 4
      const bool ok = co_await env.write(ep.out[q], ep.msg_curr[q]);  // line 5
      ep.prev_write_done[q] = ok;                                 // line 6
    }
  }
}

/// Figure 4, ReadMsgs(): poll every peer's register with adaptive
/// backoff; ep.prev_msg_from holds the last successfully read values.
template <class T>
sim::Co<void> read_msgs(sim::SimEnv& env, MsgEndpoint<T>& ep) {
  const int n = env.n();
  for (sim::Pid q = 0; q < n; ++q) {                              // line 9
    if (q == ep.self) continue;
    if (ep.read_timer[q] >= 1) --ep.read_timer[q];                // line 10
    if (ep.read_timer[q] == 0) {                                  // line 11
      ep.read_timer[q] = ep.read_timeout[q];                      // line 12
      const std::optional<T> res = co_await env.read(ep.in[q]);   // line 13
      if (!res.has_value() || *res == ep.prev_msg_from[q]) {      // line 14
        ++ep.read_timeout[q];                                     // line 15
      } else {
        ep.prev_msg_from[q] = *res;                               // line 17
        ep.read_timeout[q] = 1;                                   // line 18
      }
    }
  }
}

}  // namespace tbwf::omega
