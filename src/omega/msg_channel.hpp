// Figure 4: communicating the final value of a variable that eventually
// stops changing, over single-writer single-reader abortable registers.
//
// Writer discipline (WriteMsgs): whenever the source variable changes, p
// repeatedly writes the pending value to MsgRegister[p,q] until one write
// succeeds; only then does it pick up a newer value. Reader discipline
// (ReadMsgs): q polls MsgRegister[p,q] every readTimeout[p] invocations;
// an aborted or unchanged read grows the timeout by one (q suspects its
// reads are colliding with p's writes and backs off), a fresh value
// resets it to 1.
//
// Guarantee (used in Section 6): if p is q-timely and the source variable
// stops changing, then q eventually learns its final value -- q's backoff
// eventually leaves a window in which p's write runs solo, and solo
// operations on abortable registers never abort. If p is not q-timely or
// the variable changes forever, nothing is guaranteed.
//
// Hardening against a degraded medium (registers/reg_faults.hpp): the
// wire value is a Sealed<T> -- payload + per-value sequence number +
// checksum (omega/wire.hpp) -- so the reader can detect torn writes
// (checksum mismatch) and stale serves (sequence regression) and feed a
// per-link LinkHealth score instead of mistaking them for fresh values.
// The writer periodically republishes a settled payload under its
// existing stamp, which repairs silently dropped writes without ever
// registering as freshness on the reader. The adaptive readTimeout
// saturates at read_timeout_cap so a permanently jammed link costs a
// bounded polling rate instead of a timeout that grows forever. None of
// this changes the fault-free behavior: a spec-conforming register can
// neither corrupt a checksum nor regress a sequence number.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "omega/link_health.hpp"
#include "omega/wire.hpp"
#include "registers/abort_policy.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"

namespace tbwf::omega {

/// Per-process endpoint state for the Figure 4 procedures. Index arrays
/// by peer pid; the self slot is unused.
template <class T>
struct MsgEndpoint {
  using Wire = Sealed<T>;
  using Reg = sim::AbortableReg<Wire>;

  sim::Pid self = sim::kNoPid;
  std::vector<Reg> out;  ///< MsgRegister[self,q], writer self
  std::vector<Reg> in;   ///< MsgRegister[q,self], reader self

  std::vector<T> msg_curr;                ///< value being pushed to q
  std::vector<T> prev_msg_from;           ///< last successfully read from q
  std::vector<std::int64_t> send_seq;     ///< stamp on msg_curr[q]
  std::vector<std::int64_t> recv_seq;     ///< highest stamp accepted from q
  std::vector<std::int64_t> read_timer;
  std::vector<std::int64_t> read_timeout;
  std::vector<bool> prev_write_done;

  /// readTimeout saturation: a jammed link grows the backoff only this
  /// far, keeping the post-repair detection latency bounded.
  std::int64_t read_timeout_cap = 65536;
  /// Every this many WriteMsgs visits to a settled link, republish the
  /// current sealed payload (same stamp) to repair a silent drop the
  /// writer had no way to notice. 0 (the default) disables: on a
  /// spec-conforming medium a reported success IS an install, and the
  /// extra writes would perturb the paper-faithful Figure 4 cadence.
  /// Harnesses that arm a RegisterFaultInjector turn this on.
  std::int64_t refresh_period = 0;
  std::vector<std::int64_t> refresh_cntr;
  std::vector<bool> refresh_pending;  ///< an aborted republish to retry

  /// Per-link health; quarantine on the msg channel is bookkeeping only
  /// (polling cadence never changes -- see link_health.hpp).
  std::vector<LinkHealth> out_health, in_health;

  /// Bulk-skip fast path for ReadMsgs (performance only; the read
  /// schedule is bit-identical). After a sweep leaves every peer timer
  /// at >= 2, the next min-1 invocations cannot trigger any read --
  /// they would only decrement timers. read_msgs banks that count here,
  /// satisfies those invocations in O(1), and pays the owed decrements
  /// back in bulk before the next real sweep. Sound because the timers
  /// are touched by read_msgs alone, and a skipped invocation performs
  /// no register ops either way (so sim-step sequences are unchanged).
  std::int64_t sweep_skip_credit = 0;  ///< invocations left to skip
  std::int64_t sweep_skip_debt = 0;    ///< decrements owed to each timer

  void init(int n, sim::Pid self_pid, const T& initial,
            const LinkHealthOptions& health = {}) {
    self = self_pid;
    out.resize(n);
    in.resize(n);
    msg_curr.assign(n, initial);
    prev_msg_from.assign(n, initial);
    send_seq.assign(n, 0);
    recv_seq.assign(n, 0);
    read_timer.assign(n, 1);
    read_timeout.assign(n, 1);
    prev_write_done.assign(n, true);
    refresh_cntr.assign(n, 0);
    refresh_pending.assign(n, false);
    out_health.assign(n, LinkHealth(health));
    in_health.assign(n, LinkHealth(health));
    sweep_skip_credit = 0;
    sweep_skip_debt = 0;
  }

  void export_metrics(util::Counters& metrics,
                      const std::string& prefix = "link.msg") const {
    for (std::size_t q = 0; q < in_health.size(); ++q) {
      if (static_cast<sim::Pid>(q) == self) continue;
      in_health[q].export_metrics(
          metrics, prefix + ".in." + std::to_string(self) + "." +
                       std::to_string(q));
      out_health[q].export_metrics(
          metrics, prefix + ".out." + std::to_string(self) + "." +
                       std::to_string(q));
    }
  }
};

/// Wire a full mesh of SWSR abortable MsgRegisters among n processes.
/// Every endpoint's out[q] is the same register as q's in[p].
template <class T>
std::vector<MsgEndpoint<T>> make_msg_mesh(
    sim::World& world, registers::AbortPolicy* policy, const T& initial,
    const std::string& prefix = "Msg",
    const LinkHealthOptions& health = {}) {
  const int n = world.n();
  const auto wire0 = MsgEndpoint<T>::Wire::make(initial, 0);
  std::vector<MsgEndpoint<T>> endpoints(n);
  for (sim::Pid p = 0; p < n; ++p) endpoints[p].init(n, p, initial, health);
  for (sim::Pid p = 0; p < n; ++p) {
    for (sim::Pid q = 0; q < n; ++q) {
      if (p == q) continue;
      auto reg = world.make_abortable<typename MsgEndpoint<T>::Wire>(
          prefix + "[" + std::to_string(p) + "," + std::to_string(q) + "]",
          wire0, policy, /*writer=*/p, /*reader=*/q);
      endpoints[p].out[q] = reg;
      endpoints[q].in[p] = reg;
    }
  }
  return endpoints;
}

/// Figure 4, WriteMsgs(msgTo): push msg_to[q] towards every q != self.
/// Returns nothing; the per-peer success state is ep.prev_write_done.
template <class T>
sim::Co<void> write_msgs(sim::SimEnv& env, MsgEndpoint<T>& ep,
                         const std::vector<T>& msg_to) {
  const int n = env.n();
  TBWF_ASSERT(static_cast<int>(msg_to.size()) == n, "msg_to size mismatch");
  for (sim::Pid q = 0; q < n; ++q) {                              // line 2
    if (q == ep.self) continue;
    if (!ep.prev_write_done[q] || !(ep.msg_curr[q] == msg_to[q])) {  // line 3
      if (ep.prev_write_done[q]) {                                // line 4
        ep.msg_curr[q] = msg_to[q];
        ++ep.send_seq[q];  // one stamp per accepted msgCurr value
      }
      const bool ok = co_await env.write(                         // line 5
          ep.out[q],
          MsgEndpoint<T>::Wire::make(ep.msg_curr[q], ep.send_seq[q]));
      ep.prev_write_done[q] = ok;                                 // line 6
      ep.out_health[q].note_write(ok);
      ep.refresh_cntr[q] = 0;
      ep.refresh_pending[q] = false;
    } else if (ep.refresh_period > 0 &&
               (ep.refresh_pending[q] ||
                ++ep.refresh_cntr[q] >= ep.refresh_period)) {
      // Settled link: republish under the SAME stamp. A silently
      // dropped write left the register holding an older stamp; this
      // restores it, and a reader that already holds the stamp sees an
      // unchanged value -- no spurious freshness, no backoff reset.
      // Never through prev_write_done: Figure 6 gates heartbeats on it
      // (dest = writeDone), and an aborted repair write must not make
      // the writer fall silent towards q.
      ep.refresh_cntr[q] = 0;
      const bool ok = co_await env.write(
          ep.out[q],
          MsgEndpoint<T>::Wire::make(ep.msg_curr[q], ep.send_seq[q]));
      ep.refresh_pending[q] = !ok;
      ep.out_health[q].note_write(ok);
    }
  }
}

/// Figure 4, ReadMsgs(): poll every peer's register with adaptive
/// backoff; ep.prev_msg_from holds the last successfully read values.
template <class T>
sim::Co<void> read_msgs(sim::SimEnv& env, MsgEndpoint<T>& ep) {
  // Fast path: a previous sweep proved this whole invocation is timer
  // decrements only (no timer can reach 0). Skip the O(n) walk.
  if (ep.sweep_skip_credit > 0) {
    --ep.sweep_skip_credit;
    co_return;
  }
  const int n = env.n();
  // Pay back the decrements the skipped invocations owe before the
  // sweep below looks at the timers.
  if (ep.sweep_skip_debt > 0) {
    for (sim::Pid q = 0; q < n; ++q) {
      if (q == ep.self) continue;
      ep.read_timer[q] -= ep.sweep_skip_debt;
    }
    ep.sweep_skip_debt = 0;
  }
  for (sim::Pid q = 0; q < n; ++q) {                              // line 9
    if (q == ep.self) continue;
    if (ep.read_timer[q] >= 1) --ep.read_timer[q];                // line 10
    if (ep.read_timer[q] == 0) {                                  // line 11
      ep.read_timer[q] = ep.read_timeout[q];                      // line 12
      const std::optional<typename MsgEndpoint<T>::Wire> res =
          co_await env.read(ep.in[q]);                            // line 13
      auto& health = ep.in_health[q];
      bool fresh = false;
      if (!res.has_value()) {                                     // line 14
        health.observe_abort_round();
      } else if (!res->valid()) {
        // Torn payload: unusable, and sound evidence of a degraded
        // medium (contention can only abort, never corrupt).
        health.observe_corrupt();
      } else if (res->seq < ep.recv_seq[q]) {
        // The register went backwards: a stale serve, never the writer.
        health.observe_regression();
      } else if (res->seq == ep.recv_seq[q] &&
                 res->value == ep.prev_msg_from[q]) {
        health.observe_stale_round();  // unchanged: writer idle or slow
      } else {
        fresh = true;
        ep.prev_msg_from[q] = res->value;                         // line 17
        ep.recv_seq[q] = res->seq;
        health.observe_fresh();
      }
      if (fresh) {
        ep.read_timeout[q] = 1;                                   // line 18
      } else {
        ep.read_timeout[q] =                                      // line 15
            std::min(ep.read_timeout[q] + 1, ep.read_timeout_cap);
      }
    }
  }
  // Bank the run of no-op invocations ahead: every timer is >= 1 after
  // a sweep (a timer that hits 0 is reset to readTimeout >= 1), so the
  // next min-1 invocations only count down. After stabilization the
  // timeouts grow towards the cap, turning almost every ReadMsgs call
  // into the O(1) fast path above.
  std::int64_t min_timer = std::numeric_limits<std::int64_t>::max();
  for (sim::Pid q = 0; q < n; ++q) {
    if (q == ep.self) continue;
    min_timer = std::min(min_timer, ep.read_timer[q]);
  }
  if (n > 1 && min_timer >= 2) {
    ep.sweep_skip_credit = min_timer - 1;
    ep.sweep_skip_debt = min_timer - 1;
  }
}

}  // namespace tbwf::omega
