// Omega-Delta from abortable registers -- Section 6, Figure 6
// (Theorem 13).
//
// Candidates exchange two kinds of information over SWSR abortable
// registers only:
//   - (counter, punishment) pairs via the final-value message mechanism
//     of Figure 4: each candidate publishes its own counter and, for
//     every peer it considers inactive, a punishment value ("set your
//     counter beyond my leader's");
//   - liveness via the two-register alternating heartbeats of Figure 5.
//
// The leader is the active process with the smallest (counter, pid).
// Self-punishment on (re-)candidacy bumps the counter past the current
// leader's -- crucially WITHOUT making counter[p] change forever (it is
// a max, not an increment chain), so WriteMsgs can still deliver its
// final value. A candidate that cannot push its messages to q (the
// write keeps aborting) stops heartbeating to q (dest = writeDone),
// which preserves the key invariant: if q eventually considers p active
// forever, then q learned the final value of p's counter.
#pragma once

#include <cstdint>
#include <vector>

#include "omega/hb_channel.hpp"
#include "omega/msg_channel.hpp"
#include "omega/omega.hpp"
#include "registers/abort_policy.hpp"
#include "sim/env.hpp"
#include "sim/membership.hpp"
#include "sim/task.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {

/// Payload of MsgRegister[p,q]: <counter_p, actrTo_p[q]>.
struct CounterMsg {
  std::int64_t counter = 0;
  std::int64_t punish = 0;  ///< actrTo: "set your counter to at least this"

  bool operator==(const CounterMsg&) const = default;
};

/// Owns the abortable-register meshes and per-process state; installs
/// the Figure 6 task per process. Must outlive the world run.
class OmegaAbortable {
 public:
  struct Options {
    /// Per-link health thresholds for both meshes (link_health.hpp).
    LinkHealthOptions link_health{};
    /// Silent-drop repair cadence for the msg mesh; 0 keeps the
    /// paper-faithful write cadence (the default -- enable when a
    /// RegisterFaultInjector is armed).
    std::int64_t msg_refresh_period = 0;
  };

  /// `policy` governs every abortable register in both meshes.
  OmegaAbortable(sim::World& world, registers::AbortPolicy* policy)
      : OmegaAbortable(world, policy, Options()) {}
  OmegaAbortable(sim::World& world, registers::AbortPolicy* policy,
                 Options options);

  void install_all();
  void install(sim::Pid p);

  OmegaIO& io(sim::Pid p) { return io_[p]; }
  const OmegaIO& io(sim::Pid p) const { return io_[p]; }
  std::vector<OmegaIO*> ios();

  // Introspection for tests and benches.
  const HbEndpoint& hb(sim::Pid p) const { return hb_[p]; }
  const MsgEndpoint<CounterMsg>& msgs(sim::Pid p) const { return msg_[p]; }
  std::int64_t counter_view(sim::Pid p, sim::Pid q) const;

  /// Export every endpoint's per-link health counters (link.msg.*,
  /// link.hb.*) into `metrics`.
  void export_link_metrics(util::Counters& metrics) const;

  /// Elect over the director's current view: a non-member peer is
  /// ineligible at the line 48 choice exactly like a msg-quarantined
  /// one -- its (possibly fresh) heartbeats stop earning it leadership.
  /// Null (the default) preserves the static all-member group; plain
  /// loads only, so an event-free director changes no schedules. Must
  /// outlive the run.
  void set_membership(const sim::MembershipDirector* director) {
    membership_ = director;
  }
  const sim::MembershipDirector* membership() const { return membership_; }
  bool member(sim::Pid q) const {
    return membership_ == nullptr || membership_->member(q);
  }

  int n() const { return world_.n(); }

 private:
  friend sim::Task omega_abortable_task(sim::SimEnv& env,
                                        OmegaAbortable& sys);

  sim::World& world_;
  std::vector<MsgEndpoint<CounterMsg>> msg_;
  std::vector<HbEndpoint> hb_;
  std::vector<OmegaIO> io_;
  const sim::MembershipDirector* membership_ = nullptr;
  /// counter[p][q]: p's view of q's counter (Figure 6 local state),
  /// hoisted into the system object so tests can inspect it.
  std::vector<std::vector<std::int64_t>> counter_;
};

/// Figure 6: the main loop for process env.pid().
sim::Task omega_abortable_task(sim::SimEnv& env, OmegaAbortable& sys);

}  // namespace tbwf::omega
