// Wire formats for the hardened Section 6 channels.
//
// A spec-conforming abortable register either aborts or tells the truth,
// so Figures 4 and 5 never need framing. A *degraded* register
// (registers/reg_faults.hpp) can lie: report a successful write that
// never landed, serve a previous value, or land half of a multi-word
// value. The channels therefore stop shipping naked payloads and ship
// sealed ones -- value + monotone sequence number + checksum -- so a
// reader can tell "the medium lied" (checksum mismatch, sequence
// regression) apart from "the writer is slow" (same stamp again), which
// is the distinction the timeliness judgments of Section 6 live on.
//
// The seal is NOT cryptographic; it is a tripwire for torn/stale media,
// sized so an accidental collision is out of reach for any simulated run.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace tbwf::omega {

namespace wire {

/// SplitMix64 finalizer: the bijective mix both seals below share.
inline constexpr std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the object bytes, folded with the sequence number and
/// finalized. Byte-wise hashing requires padding-free trivially-copyable
/// payloads; every channel payload in this codebase is one.
template <class T>
std::uint64_t seal(const T& value, std::int64_t seq) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed payloads are checksummed bytewise");
  static_assert(std::has_unique_object_representations_v<T>,
                "payload has padding bytes; the checksum would be "
                "indeterminate");
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  std::uint64_t acc = 0xCBF29CE484222325ULL;
  for (const unsigned char b : bytes) {
    acc ^= b;
    acc *= 0x100000001B3ULL;
  }
  return mix(acc ^ (static_cast<std::uint64_t>(seq) + 0x9E3779B97F4A7C15ULL));
}

}  // namespace wire

/// Figure 4 wire format: one message, stamped and checksummed. The
/// sequence number advances once per *accepted* msgCurr value, so a
/// republished payload (silent-drop repair) carries the same stamp and
/// is not mistaken for freshness.
template <class T>
struct Sealed {
  T value{};
  std::int64_t seq = 0;
  std::uint64_t check = 0;

  static Sealed make(const T& value, std::int64_t seq) {
    return Sealed{value, seq, wire::seal(value, seq)};
  }
  bool valid() const { return check == wire::seal(value, seq); }
  bool operator==(const Sealed&) const = default;
};

/// Figure 5 wire format: the heartbeat counter IS the sequence number,
/// so the stamp is just counter + checksum.
struct HbStamp {
  std::int64_t seq = 0;
  std::uint64_t check = 0;

  static HbStamp make(std::int64_t seq) {
    return HbStamp{seq, wire::seal(seq, seq)};
  }
  bool valid() const { return check == wire::seal(seq, seq); }
  bool operator==(const HbStamp&) const = default;
};

}  // namespace tbwf::omega
