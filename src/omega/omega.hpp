// The dynamic leader elector Omega-Delta -- Section 4.
//
// Each process p interacts with Omega-Delta through two local variables:
// the input CANDIDATE (does p currently want to compete for leadership?)
// and the output LEADER (who Omega-Delta currently believes leads, or "?"
// when it offers no information).
//
// Definition 5 (the guarantee): in every run, if some timely process is a
// permanent candidate, then there is a timely process l among the
// permanent-or-repeated candidates such that eventually LEADER_l = l,
// every permanent candidate's LEADER converges to l, and every repeated
// candidate's LEADER is eventually in {?, l}; every eventual
// non-candidate's LEADER converges to ?.
//
// Theorem 7: under *canonical use* -- after setting CANDIDATE to false, a
// process waits until LEADER != itself before re-candidating -- the
// elected l is a *permanent* timely candidate.
#pragma once

#include "sim/types.hpp"

namespace tbwf::omega {

/// The paper's "?" output.
inline constexpr sim::Pid kNoLeader = sim::kNoPid;

/// Omega-Delta's per-process interface variables. Plain fields: within a
/// simulated process, sub-tasks interleave single-threadedly; tests and
/// application tasks read/write them directly.
struct OmegaIO {
  bool candidate = false;      ///< input: CANDIDATE
  sim::Pid leader = kNoLeader; ///< output: LEADER ("?" == kNoLeader)
};

}  // namespace tbwf::omega
