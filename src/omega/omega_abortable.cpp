#include "omega/omega_abortable.hpp"

#include <algorithm>

namespace tbwf::omega {

OmegaAbortable::OmegaAbortable(sim::World& world,
                               registers::AbortPolicy* policy,
                               Options options)
    : world_(world) {
  msg_ = make_msg_mesh<CounterMsg>(world, policy, CounterMsg{},
                                   "MsgRegister", options.link_health);
  hb_ = make_hb_mesh(world, policy, "HbRegister", options.link_health);
  for (auto& ep : msg_) ep.refresh_period = options.msg_refresh_period;
  io_.resize(world.n());
  counter_.assign(world.n(),
                  std::vector<std::int64_t>(world.n(), 0));
}

std::vector<OmegaIO*> OmegaAbortable::ios() {
  std::vector<OmegaIO*> result;
  result.reserve(io_.size());
  for (auto& io : io_) result.push_back(&io);
  return result;
}

std::int64_t OmegaAbortable::counter_view(sim::Pid p, sim::Pid q) const {
  return counter_[p][q];
}

void OmegaAbortable::export_link_metrics(util::Counters& metrics) const {
  for (const auto& ep : msg_) ep.export_metrics(metrics);
  for (const auto& ep : hb_) ep.export_metrics(metrics);
}

void OmegaAbortable::install(sim::Pid p) {
  world_.spawn(p, "omega-abortable", [this](sim::SimEnv& env) {
    return omega_abortable_task(env, *this);
  });
}

void OmegaAbortable::install_all() {
  for (sim::Pid p = 0; p < n(); ++p) install(p);
}

// Figure 6, faithful transcription (lines 41-59).
sim::Task omega_abortable_task(sim::SimEnv& env, OmegaAbortable& sys) {
  const sim::Pid p = env.pid();
  const int n = env.n();
  OmegaIO& io = sys.io_[p];
  MsgEndpoint<CounterMsg>& msg = sys.msg_[p];
  HbEndpoint& hb = sys.hb_[p];

  sim::Pid leader = p;                       // local `leader`, init p
  std::vector<std::int64_t>& counter = sys.counter_[p];  // counter[q]
  std::vector<std::int64_t> actr_to(n, 0);   // actrTo[q]
  std::vector<bool> write_done(n, false);    // writeDone[q]
  std::vector<CounterMsg> msg_to(n);

  for (;;) {                                                      // line 41
    io.leader = kNoLeader;                                        // line 42
    while (!io.candidate) co_await env.yield();                   // line 43
    counter[p] = std::max(counter[p], counter[leader] + 1);       // line 44

    do {                                                          // line 45
      co_await send_heartbeat(env, hb, write_done);               // line 46
      co_await receive_heartbeat(env, hb);                        // line 47

      leader = p;                                                 // line 48
      for (sim::Pid q = 0; q < n; ++q) {
        if (!hb.active_set[q]) continue;
        // Degraded-medium extension of the line 48 choice: a peer whose
        // counter channel is quarantined (checksum/regression evidence
        // or a confirmed jam) is ineligible. counter[q] is frozen at a
        // stale value, and electing on it re-creates exactly the
        // disagreement the Figure 6 invariant rules out -- "if q is
        // eventually active forever at p, then p learned q's final
        // counter" cannot hold over a link that serves nothing.
        if (q != p && msg.in_health[q].quarantined()) continue;
        // Epoch-based membership: a peer outside the current view is
        // ineligible the same way -- a departed member's counter must
        // not be trusted into a leadership choice, however fresh its
        // heartbeats still look.
        if (q != p && !sys.member(q)) continue;
        if (counter[q] < counter[leader] ||
            (counter[q] == counter[leader] && q < leader)) {
          leader = q;
        }
      }
      io.leader = leader;                                         // line 49

      for (sim::Pid q = 0; q < n; ++q) {                          // line 50
        if (q == p) continue;
        if (!hb.active_set[q]) {                                  // line 51
          actr_to[q] = std::max(actr_to[q], counter[leader] + 1); // line 52
        }
        msg_to[q] = CounterMsg{counter[p], actr_to[q]};           // line 53
      }
      co_await write_msgs(env, msg, msg_to);                      // line 54
      write_done = msg.prev_write_done;
      co_await read_msgs(env, msg);                               // line 55
      for (sim::Pid q = 0; q < n; ++q) {                          // line 56
        if (q == p) continue;
        counter[q] = msg.prev_msg_from[q].counter;                // line 57
        counter[p] = std::max(counter[p],
                              msg.prev_msg_from[q].punish);       // line 58
      }
      // One local step per round: the round may otherwise perform no
      // shared-memory operation at all (nothing due to send, all poll
      // timers above zero), and an iteration must consume at least one
      // step of p for the adaptive timers to be measured in p's speed.
      co_await env.yield();
    } while (io.candidate);                                       // line 59
  }
}

}  // namespace tbwf::omega
