#include "omega/hb_channel.hpp"

#include <algorithm>
#include <limits>

namespace tbwf::omega {

std::vector<HbEndpoint> make_hb_mesh(sim::World& world,
                                     registers::AbortPolicy* policy,
                                     const std::string& prefix,
                                     const LinkHealthOptions& health) {
  const int n = world.n();
  std::vector<HbEndpoint> endpoints(n);
  for (sim::Pid p = 0; p < n; ++p) endpoints[p].init(n, p, health);
  for (sim::Pid p = 0; p < n; ++p) {
    for (sim::Pid q = 0; q < n; ++q) {
      if (p == q) continue;
      const std::string pair =
          "[" + std::to_string(p) + "," + std::to_string(q) + "]";
      auto r1 = world.make_abortable<HbStamp>(prefix + "1" + pair,
                                              HbStamp::make(0), policy,
                                              /*writer=*/p, /*reader=*/q);
      auto r2 = world.make_abortable<HbStamp>(prefix + "2" + pair,
                                              HbStamp::make(0), policy,
                                              /*writer=*/p, /*reader=*/q);
      endpoints[p].out1[q] = r1;
      endpoints[p].out2[q] = r2;
      endpoints[q].in1[p] = r1;
      endpoints[q].in2[p] = r2;
    }
  }
  return endpoints;
}

// Figure 5, lines 20-25.
sim::Co<void> send_heartbeat(sim::SimEnv& env, HbEndpoint& ep,
                             const std::vector<bool>& dest) {
  const int n = env.n();
  ++ep.send_counter;                                              // line 21
  const HbStamp stamp = HbStamp::make(ep.send_counter);
  for (sim::Pid q = 0; q < n; ++q) {                              // line 22
    if (q == ep.self || !dest[q]) continue;                       // line 23
    const bool ok1 = co_await env.write(ep.out1[q], stamp);       // line 24
    const bool ok2 = co_await env.write(ep.out2[q], stamp);       // line 25
    // Writer-side streak bookkeeping only; a write-jam flag never
    // changes the send cadence (the sends themselves are the probes).
    ep.out_health[q].note_write(ok1);
    ep.out_health[q].note_write(ok2);
  }
}

// Figure 5, lines 26-40, with the degraded-medium screen in front of
// the freshness judgment.
sim::Co<void> receive_heartbeat(sim::SimEnv& env, HbEndpoint& ep) {
  // Fast path: a previous sweep proved this invocation is timer
  // decrements only -- no poll fires, activeSet cannot change.
  if (ep.sweep_skip_credit > 0) {
    --ep.sweep_skip_credit;
    co_return;
  }
  const int n = env.n();
  // Pay back the decrements the skipped invocations owe.
  if (ep.sweep_skip_debt > 0) {
    for (sim::Pid q = 0; q < n; ++q) {
      if (q == ep.self) continue;
      ep.hb_timer[q] -= ep.sweep_skip_debt;
    }
    ep.sweep_skip_debt = 0;
  }
  for (sim::Pid q = 0; q < n; ++q) {                              // line 27
    if (q == ep.self) continue;
    if (ep.hb_timer[q] >= 1) --ep.hb_timer[q];                    // line 28
    if (ep.hb_timer[q] == 0) {                                    // line 29
      ep.hb_timer[q] = ep.hb_timeout[q];                          // line 30
      ep.prev1[q] = ep.hb1[q];                                    // line 31
      ep.prev2[q] = ep.hb2[q];                                    // line 32
      ep.hb1[q] = co_await env.read(ep.in1[q]);                   // line 33
      ep.hb2[q] = co_await env.read(ep.in2[q]);                   // line 34
      auto& health = ep.in_health[q];

      // Screen each read: a stamp failing its checksum or regressing
      // below an accepted counter is a medium fault -- it must neither
      // count as fresh (a broken link must not prove timeliness) nor as
      // the paper's stale evidence of a slow writer.
      bool sound = true;
      const auto classify = [&](const std::optional<HbStamp>& cur,
                                const std::optional<HbStamp>& prev,
                                HbCounter& seen) {
        if (!cur.has_value()) return true;  // abort: fresh per line 35
        if (!cur->valid()) {
          health.observe_corrupt();
          sound = false;
          return false;
        }
        if (cur->seq < seen) {
          health.observe_regression();
          sound = false;
          return false;
        }
        seen = cur->seq;
        return cur != prev;                                       // line 35
      };
      const bool fresh1 = classify(ep.hb1[q], ep.prev1[q], ep.seen1[q]);
      const bool fresh2 = classify(ep.hb2[q], ep.prev2[q], ep.seen2[q]);
      const bool fresh = fresh1 && fresh2 && sound;

      // Round-level health: only a round in which EVERY read aborted
      // feeds the jam streak; a valid stale round is Figure 5's
      // evidence of a slow WRITER over a working medium and breaks it.
      if (!ep.hb1[q].has_value() && !ep.hb2[q].has_value()) {
        health.observe_abort_round();
      } else if (fresh) {
        health.observe_fresh();
      } else if (sound) {
        health.observe_stale_round();
      }

      if (health.quarantined()) {
        // Demoted: Figure 6 punishes q through counter/actrTo. Probe on
        // the backoff schedule instead of hbTimeout, which would grow
        // forever against a jam and make an eventual heal invisible.
        ep.active_set[q] = false;
        ep.hb_timer[q] = health.probe_delay();
        continue;
      }
      if (fresh) {
        ep.active_set[q] = true;                                  // line 36
      } else {
        ep.active_set[q] = false;                                 // line 38
        ++ep.hb_timeout[q];                                       // line 39
      }
      // Jam suspicion: a long all-abort streak spaces the next polls
      // out (see link_health.hpp). The judgment above already ran --
      // abort still counts as fresh until the jam is confirmed.
      if (const auto spaced = health.suspect_delay(); spaced > 0) {
        ep.hb_timer[q] = std::max(ep.hb_timer[q], spaced);
      }
    }
  }
  // Bank the run of no-op invocations ahead: every timer is >= 1 after
  // a sweep (resets go to hbTimeout, probe_delay, or suspect_delay, all
  // >= 1), so the next min-1 invocations only count down. Once the
  // timeouts have grown past the writers' cadence, most calls take the
  // O(1) fast path above.
  std::int64_t min_timer = std::numeric_limits<std::int64_t>::max();
  for (sim::Pid q = 0; q < n; ++q) {
    if (q == ep.self) continue;
    min_timer = std::min(min_timer, ep.hb_timer[q]);
  }
  if (n > 1 && min_timer >= 2) {
    ep.sweep_skip_credit = min_timer - 1;
    ep.sweep_skip_debt = min_timer - 1;
  }
}

}  // namespace tbwf::omega
