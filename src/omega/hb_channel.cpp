#include "omega/hb_channel.hpp"

namespace tbwf::omega {

std::vector<HbEndpoint> make_hb_mesh(sim::World& world,
                                     registers::AbortPolicy* policy,
                                     const std::string& prefix) {
  const int n = world.n();
  std::vector<HbEndpoint> endpoints(n);
  for (sim::Pid p = 0; p < n; ++p) endpoints[p].init(n, p);
  for (sim::Pid p = 0; p < n; ++p) {
    for (sim::Pid q = 0; q < n; ++q) {
      if (p == q) continue;
      const std::string pair =
          "[" + std::to_string(p) + "," + std::to_string(q) + "]";
      auto r1 = world.make_abortable<HbCounter>(prefix + "1" + pair,
                                                HbCounter{0}, policy,
                                                /*writer=*/p, /*reader=*/q);
      auto r2 = world.make_abortable<HbCounter>(prefix + "2" + pair,
                                                HbCounter{0}, policy,
                                                /*writer=*/p, /*reader=*/q);
      endpoints[p].out1[q] = r1;
      endpoints[p].out2[q] = r2;
      endpoints[q].in1[p] = r1;
      endpoints[q].in2[p] = r2;
    }
  }
  return endpoints;
}

// Figure 5, lines 20-25.
sim::Co<void> send_heartbeat(sim::SimEnv& env, HbEndpoint& ep,
                             const std::vector<bool>& dest) {
  const int n = env.n();
  ++ep.send_counter;                                              // line 21
  for (sim::Pid q = 0; q < n; ++q) {                              // line 22
    if (q == ep.self || !dest[q]) continue;                       // line 23
    (void)co_await env.write(ep.out1[q], ep.send_counter);        // line 24
    (void)co_await env.write(ep.out2[q], ep.send_counter);        // line 25
  }
}

// Figure 5, lines 26-40.
sim::Co<void> receive_heartbeat(sim::SimEnv& env, HbEndpoint& ep) {
  const int n = env.n();
  for (sim::Pid q = 0; q < n; ++q) {                              // line 27
    if (q == ep.self) continue;
    if (ep.hb_timer[q] >= 1) --ep.hb_timer[q];                    // line 28
    if (ep.hb_timer[q] == 0) {                                    // line 29
      ep.hb_timer[q] = ep.hb_timeout[q];                          // line 30
      ep.prev1[q] = ep.hb1[q];                                    // line 31
      ep.prev2[q] = ep.hb2[q];                                    // line 32
      ep.hb1[q] = co_await env.read(ep.in1[q]);                   // line 33
      ep.hb2[q] = co_await env.read(ep.in2[q]);                   // line 34
      const bool fresh1 =
          !ep.hb1[q].has_value() || ep.hb1[q] != ep.prev1[q];     // line 35
      const bool fresh2 =
          !ep.hb2[q].has_value() || ep.hb2[q] != ep.prev2[q];
      if (fresh1 && fresh2) {
        ep.active_set[q] = true;                                  // line 36
      } else {
        ep.active_set[q] = false;                                 // line 38
        ++ep.hb_timeout[q];                                       // line 39
      }
    }
  }
}

}  // namespace tbwf::omega
