// Candidate drivers: sub-tasks that drive a process's CANDIDATE input in
// the patterns of Definition 4 (permanent / repeated / never candidates),
// including the *canonical use* discipline of Definition 6 (wait until
// LEADER != self before re-candidating). Used by tests, benches and
// examples.
#pragma once

#include "omega/omega.hpp"
#include "sim/env.hpp"
#include "sim/membership.hpp"
#include "sim/task.hpp"

namespace tbwf::omega {

/// Pcandidate: candidate = true forever.
inline sim::Task permanent_candidate(sim::SimEnv& env, OmegaIO& io) {
  io.candidate = true;
  for (;;) co_await env.yield();
}

/// Ncandidate: candidate = false forever (after an optional initial
/// dabble of `dabble_steps` steps as a candidate).
inline sim::Task never_candidate(sim::SimEnv& env, OmegaIO& io,
                                 sim::Step dabble_steps = 0) {
  if (dabble_steps > 0) {
    io.candidate = true;
    for (sim::Step i = 0; i < dabble_steps; ++i) co_await env.yield();
  }
  io.candidate = false;
  for (;;) co_await env.yield();
}

/// Rcandidate: toggles candidacy forever, `on` of its own steps in, `off`
/// of its own steps out.
inline sim::Task repeated_candidate(sim::SimEnv& env, OmegaIO& io,
                                    sim::Step on, sim::Step off) {
  for (;;) {
    io.candidate = true;
    for (sim::Step i = 0; i < on; ++i) co_await env.yield();
    io.candidate = false;
    for (sim::Step i = 0; i < off; ++i) co_await env.yield();
  }
}

/// Membership-driven candidacy: candidate exactly while the director's
/// current view contains this process. Leaving the view is a canonical
/// withdrawal (the Figure 3/6 loop resets LEADER and stops
/// heartbeating); re-joining in a later epoch re-enters candidacy with
/// the usual self-punishment, so a re-admitted seat cannot reclaim
/// leadership on its old counter. Plain loads only -- the driver costs
/// one yield per step like every other driver.
inline sim::Task membership_candidate(sim::SimEnv& env, OmegaIO& io,
                                      const sim::MembershipDirector& dir) {
  for (;;) {
    io.candidate = dir.member(env.pid());
    co_await env.yield();
  }
}

/// Rcandidate under canonical use (Definition 6): after leaving, wait
/// until LEADER != self before re-joining.
inline sim::Task canonical_repeated_candidate(sim::SimEnv& env, OmegaIO& io,
                                              sim::Step on, sim::Step off) {
  for (;;) {
    while (io.leader == env.pid()) co_await env.yield();
    io.candidate = true;
    for (sim::Step i = 0; i < on; ++i) co_await env.yield();
    io.candidate = false;
    for (sim::Step i = 0; i < off; ++i) co_await env.yield();
  }
}

}  // namespace tbwf::omega
