// Omega-Delta from activity monitors and atomic registers -- Section 5.2,
// Figure 3 (Theorems 11-12).
//
// One shared MWMR atomic register CounterRegister[p] per process counts
// roughly how many times p has been considered "bad" for leadership:
//   - p increments its own counter each time it (re-)becomes a candidate
//     ("self-punishment"; keeps repeated candidates from being elected);
//   - any candidate that sees A(p,q)'s faultCntr[q] grow increments
//     CounterRegister[q] (punishing processes that are not timely).
// A candidate's leader is the process with the lexicographically
// smallest (counter, pid) among the processes its activity monitors
// currently report active, plus itself. A process declares itself active
// (heartbeats to everyone) exactly while it considers itself the leader,
// which is what makes the implementation write-efficient: after
// stabilization only the leader (and repeated candidates, transiently)
// write to shared registers.
#pragma once

#include <cstdint>
#include <vector>

#include "monitor/activity_monitor.hpp"
#include "omega/omega.hpp"
#include "sim/env.hpp"
#include "sim/membership.hpp"
#include "sim/task.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {

/// Owns the shared registers, the monitor matrix and the per-process
/// OmegaIO variables; installs the per-process Figure 3 task plus the
/// Figure 2 monitor tasks. Must outlive the world run.
class OmegaRegisters {
 public:
  explicit OmegaRegisters(sim::World& world);

  /// Spawn Omega-Delta (and its monitors) on every process.
  void install_all();
  /// Spawn on one process only (others can run different protocols).
  void install(sim::Pid p);

  OmegaIO& io(sim::Pid p) { return io_[p]; }
  const OmegaIO& io(sim::Pid p) const { return io_[p]; }
  std::vector<OmegaIO*> ios();

  monitor::MonitorMatrix& monitors() { return matrix_; }
  sim::AtomicReg<std::int64_t> counter_register(sim::Pid p) const {
    return counter_reg_[p];
  }

  int n() const { return world_.n(); }

  /// ABLATION -- disable the Figure 3 lines 7-8 self-punishment (the
  /// increment of a process's own CounterRegister on every (re-)entry
  /// into candidacy). The paper: "Without this self-punishment, it is
  /// easy to find a scenario where r has the smallest CounterRegister
  /// and leadership oscillates forever between r and another process."
  /// tests/omega_ablation_test.cpp and the E3 commentary exhibit it.
  void set_self_punishment(bool enabled) { self_punishment_ = enabled; }
  bool self_punishment() const { return self_punishment_; }

  /// Elect over the director's current view instead of the full
  /// compile-time group: non-members are skipped at line 12 exactly the
  /// way crashed-looking processes are, and a view change (epoch bump)
  /// invalidates the scan cache so the next round re-reads the world.
  /// Null (the default) preserves the static all-member group. The
  /// director must outlive the run; tasks read it with plain loads
  /// (no co_await), so attaching one with no events changes no
  /// schedules.
  void set_membership(const sim::MembershipDirector* director) {
    membership_ = director;
  }
  const sim::MembershipDirector* membership() const { return membership_; }
  bool member(sim::Pid q) const {
    return membership_ == nullptr || membership_->member(q);
  }

  /// OPT-IN stabilization-aware scan caching for the line-13 counter
  /// sweep. A candidate that saw no monitor status change, no faultCntr
  /// growth and issued no counter write since its last full scan reuses
  /// the cached counter[] snapshot instead of re-reading all n shared
  /// registers; a full scan still runs every scan_refresh_period()
  /// rounds, which bounds the staleness window: any concurrent counter
  /// write (another candidate's self-punishment is the one that is
  /// invisible to this process's monitors) is observed at most one
  /// refresh period late, so the Theorem 11/12 convergence arguments --
  /// which only need changes to be seen EVENTUALLY -- go through with a
  /// delay bounded by period * round length. Default OFF: skipped reads
  /// change sim-step schedules, and the pinned conformance sweeps must
  /// keep their exact traces. World counters "omega.scan.full.p<i>" /
  /// "omega.scan.skipped.p<i>" record the effect.
  void set_scan_cache(bool enabled) { scan_cache_ = enabled; }
  bool scan_cache() const { return scan_cache_; }
  /// Rounds a cached snapshot may be reused before a forced full scan.
  void set_scan_refresh_period(std::int64_t rounds);
  std::int64_t scan_refresh_period() const { return scan_refresh_period_; }

  /// MUTATION -- freeze the published leader estimate: once a process
  /// has announced any leader, the line-2 reset and line-14 update are
  /// skipped, so io.leader goes permanently stale. A TBWF object on top
  /// then waits on a dead leader after a crash, and the conformance
  /// checker must flag the lost wait-freedom
  /// (tests/verify_mutation_test.cpp). Never set in production code.
  void set_mutation_freeze_leader(bool enabled) {
    mutation_freeze_leader_ = enabled;
  }
  bool mutation_freeze_leader() const { return mutation_freeze_leader_; }

  /// MUTATION -- torn CounterRegister punishment write: the line-8 /
  /// line-20 increments write the OLD counter value back (the increment
  /// is torn off). Equivalent to running without self-punishment or
  /// effective punishment, so the oscillation scenario of
  /// tests/omega_ablation_test.cpp never converges; the verify layer's
  /// mutation suite must catch the churn. Never set in production code.
  void set_mutation_torn_counter_write(bool enabled) {
    mutation_torn_counter_write_ = enabled;
  }
  bool mutation_torn_counter_write() const {
    return mutation_torn_counter_write_;
  }

 private:
  friend sim::Task omega_registers_task(sim::SimEnv& env,
                                        OmegaRegisters& sys);

  sim::World& world_;
  monitor::MonitorMatrix matrix_;
  std::vector<sim::AtomicReg<std::int64_t>> counter_reg_;
  std::vector<OmegaIO> io_;
  const sim::MembershipDirector* membership_ = nullptr;
  bool self_punishment_ = true;
  bool scan_cache_ = false;
  std::int64_t scan_refresh_period_ = 64;
  bool mutation_freeze_leader_ = false;
  bool mutation_torn_counter_write_ = false;
};

/// Figure 3: the main Omega-Delta loop for process env.pid().
sim::Task omega_registers_task(sim::SimEnv& env, OmegaRegisters& sys);

}  // namespace tbwf::omega
