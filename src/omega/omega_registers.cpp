#include "omega/omega_registers.hpp"

#include <string>

#include "util/assert.hpp"

namespace tbwf::omega {

using monitor::Status;

OmegaRegisters::OmegaRegisters(sim::World& world)
    : world_(world), matrix_(world) {
  const int n = world.n();
  counter_reg_.reserve(n);
  for (sim::Pid p = 0; p < n; ++p) {
    counter_reg_.push_back(world.make_atomic<std::int64_t>(
        "CounterRegister[" + std::to_string(p) + "]", 0));
  }
  io_.resize(n);
}

std::vector<OmegaIO*> OmegaRegisters::ios() {
  std::vector<OmegaIO*> result;
  result.reserve(io_.size());
  for (auto& io : io_) result.push_back(&io);
  return result;
}

void OmegaRegisters::install(sim::Pid p) {
  matrix_.install(p);
  world_.spawn(p, "omega",
               [this](sim::SimEnv& env) {
                 return omega_registers_task(env, *this);
               });
}

void OmegaRegisters::install_all() {
  for (sim::Pid p = 0; p < n(); ++p) install(p);
}

void OmegaRegisters::set_scan_refresh_period(std::int64_t rounds) {
  TBWF_ASSERT(rounds >= 1, "scan refresh period must be >= 1");
  scan_refresh_period_ = rounds;
}

// Figure 3, faithful transcription. Loops over "each q in Pi" skip q = p
// for the monitor interactions: A(p,p) is trivial (the paper's footnote
// 6) -- p is always active for itself (line 12 adds p to activeSet
// unconditionally) and never suspects itself.
sim::Task omega_registers_task(sim::SimEnv& env, OmegaRegisters& sys) {
  const sim::Pid p = env.pid();
  const int n = env.n();
  OmegaIO& io = sys.io(p);

  std::vector<std::uint64_t> fault_cntr(n, 0);      // faultCntr[q]
  std::vector<std::uint64_t> max_fault_cntr(n, 0);  // maxFaultCntr[q]
  std::vector<std::int64_t> counter(n, 0);          // counter[q]
  std::vector<Status> status(n, Status::Unknown);   // status[q]
  std::vector<bool> active_set(n, false);           // activeSet

  // Scan-cache state (only used when sys.scan_cache() is on): the
  // counter[] snapshot is reusable while the candidate's local view is
  // quiet -- same activeSet, no faultCntr growth, no counter write of
  // our own -- and the snapshot is younger than the refresh period.
  bool cache_valid = false;
  std::int64_t cache_age = 0;
  std::vector<bool> cached_active_set(n, false);
  util::Counters& metrics = env.world().counters();
  const std::string pid_tag = ".p" + std::to_string(p);

  // Membership view (plain loads, no co_await -- a null or event-free
  // director leaves every schedule untouched). A view change is as
  // disruptive as a faultCntr bump: the cached counter snapshot was
  // taken under the old member set, so force a full scan.
  std::uint32_t seen_epoch =
      sys.membership_ != nullptr ? sys.membership_->epoch() : 0;

  // Verify-layer mutation state: with freeze_leader on, the first
  // announced leader sticks forever (lines 2 and 14 are skipped once
  // `announced`); with torn_counter_write on, the punishment writes at
  // lines 8 and 20 store the old value back (increment torn off).
  bool announced = false;
  const std::int64_t punish_delta =
      sys.mutation_torn_counter_write() ? 0 : 1;

  for (;;) {                                                      // line 1
    if (!(sys.mutation_freeze_leader() && announced)) {
      io.leader = kNoLeader;                                      // line 2
    }
    for (sim::Pid q = 0; q < n; ++q) {                            // line 3
      if (q != p) sys.matrix_.io(p, q).monitoring = false;
    }
    for (sim::Pid q = 0; q < n; ++q) {                            // line 4
      if (q != p) sys.matrix_.active_for(p, q).active_for = false;
    }

    while (!io.candidate) co_await env.yield();                   // line 5

    for (sim::Pid q = 0; q < n; ++q) {                            // line 6
      if (q != p) sys.matrix_.io(p, q).monitoring = true;
    }
    if (sys.self_punishment_) {
      counter[p] = co_await env.read(sys.counter_reg_[p]);        // line 7
      co_await env.write(sys.counter_reg_[p],
                         counter[p] + punish_delta);              // line 8
    }
    // Any snapshot from a previous candidacy spell is stale (we just
    // bumped our own counter, and arbitrarily much happened while we
    // were not a candidate).
    cache_valid = false;

    while (io.candidate) {                                        // line 9
      for (sim::Pid q = 0; q < n; ++q) {                          // line 10
        if (q == p) continue;
        for (;;) {                                                // line 11
          status[q] = sys.matrix_.io(p, q).status;
          fault_cntr[q] = sys.matrix_.io(p, q).fault_cntr;
          if (status[q] != Status::Unknown) break;
          co_await env.yield();
        }
      }

      if (sys.membership_ != nullptr &&
          sys.membership_->epoch() != seen_epoch) {
        seen_epoch = sys.membership_->epoch();
        cache_valid = false;
      }
      for (sim::Pid q = 0; q < n; ++q) {                          // line 12
        // The election runs over the current view: a non-member is
        // skipped exactly like a crashed-looking process, however
        // fresh its heartbeats still are.
        active_set[q] = sys.member(q) &&
                        ((q == p) || (status[q] == Status::Active));
      }

      // Line 13, behind the opt-in scan cache: re-read all n counter
      // registers only when the local view moved (activeSet changed or
      // some faultCntr grew -- the latter means line 20 is about to
      // write counters anyway) or the snapshot aged out. Between full
      // scans the election at line 14 runs on the cached counter[].
      bool scan = true;
      if (sys.scan_cache_) {
        bool quiet = cache_valid && active_set == cached_active_set &&
                     cache_age < sys.scan_refresh_period_;
        if (quiet) {
          for (sim::Pid q = 0; q < n; ++q) {
            if (q != p && fault_cntr[q] > max_fault_cntr[q]) {
              quiet = false;
              break;
            }
          }
        }
        scan = !quiet;
        metrics.inc(scan ? "omega.scan.full" + pid_tag
                         : "omega.scan.skipped" + pid_tag);
      }
      if (scan) {
        for (sim::Pid q = 0; q < n; ++q) {                        // line 13
          counter[q] = co_await env.read(sys.counter_reg_[q]);
        }
        cache_valid = true;
        cache_age = 0;
        cached_active_set = active_set;
      } else {
        ++cache_age;
      }

      // Line 14 over the view: min (counter, pid) among activeSet.
      // With a static group active_set[p] is always true, so starting
      // from kNoPid is identical to the paper's "leader := p" seed; a
      // non-member candidate must not nominate itself, so it falls
      // back to p only when the view exposes nobody at all.
      sim::Pid leader = sim::kNoPid;                              // line 14
      for (sim::Pid q = 0; q < n; ++q) {
        if (!active_set[q]) continue;
        if (leader == sim::kNoPid || counter[q] < counter[leader] ||
            (counter[q] == counter[leader] && q < leader)) {
          leader = q;
        }
      }
      if (leader == sim::kNoPid) leader = p;
      if (!(sys.mutation_freeze_leader() && announced)) {
        io.leader = leader;
        announced = true;
      }

      const bool self_leading = (leader == p);                    // line 15
      for (sim::Pid q = 0; q < n; ++q) {                          // lines 16-17
        if (q != p) {
          sys.matrix_.active_for(p, q).active_for = self_leading;
        }
      }

      for (sim::Pid q = 0; q < n; ++q) {                          // line 18
        if (q == p) continue;
        if (fault_cntr[q] > max_fault_cntr[q]) {                  // line 19
          co_await env.write(sys.counter_reg_[q],
                             counter[q] + punish_delta);          // line 20
          max_fault_cntr[q] = fault_cntr[q];                      // line 21
          // Our own write moved a counter past the snapshot.
          cache_valid = false;
        }
      }
    }
  }
}

}  // namespace tbwf::omega
