#include "omega/omega_spec.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace tbwf::omega {

namespace {

bool contains(const std::vector<sim::Pid>& set, sim::Pid p) {
  return std::find(set.begin(), set.end(), p) != set.end();
}

std::string pid_str(sim::Pid p) {
  return p == kNoLeader ? std::string("?") : std::to_string(p);
}

/// True iff the trajectory satisfies pred at check_from and at every
/// change-point in [check_from, end).
template <class T, class Pred>
bool suffix_satisfies(const sim::Trajectory<T>& traj, sim::Step check_from,
                      Pred pred) {
  if (traj.empty()) return false;
  if (!pred(traj.value_at(check_from))) return false;
  for (const auto& [step, value] : traj.points()) {
    if (step >= check_from && !pred(value)) return false;
  }
  return true;
}

}  // namespace

OmegaRecord::OmegaRecord(sim::World& world,
                         const std::vector<OmegaIO*>& ios) {
  const int n = static_cast<int>(ios.size());
  candidate_.resize(n);
  leader_.resize(n);
  for (sim::Pid p = 0; p < n; ++p) {
    // Record the initial values as of step 0 so value_at() is total.
    candidate_[p].sample(0, ios[p]->candidate);
    leader_[p].sample(0, ios[p]->leader);
    candidate_[p].attach(world, &ios[p]->candidate);
    leader_[p].attach(world, &ios[p]->leader);
  }
}

std::string SpecCheckResult::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATED") << " elected=" << pid_str(elected);
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

SpecCheckResult check_omega_spec(const OmegaRecord& record,
                                 const CandidateClassification& classes,
                                 const std::vector<sim::Pid>& timely,
                                 sim::Step check_from,
                                 bool require_leader_permanent,
                                 const sim::Trace* trace,
                                 sim::Step min_suffix_steps) {
  SpecCheckResult result;
  result.ok = true;
  auto fail = [&result](const std::string& msg) {
    result.ok = false;
    result.violations.push_back(msg);
  };
  // Processes that barely ran in the suffix cannot have updated their
  // outputs; a finite run cannot falsify their convergence.
  auto exempt = [&](sim::Pid p) {
    return trace != nullptr &&
           trace->steps_of_in(p, check_from, trace->now()) <
               min_suffix_steps;
  };

  // Property 2: eventual non-candidates converge to "?".
  for (sim::Pid p : classes.ncandidates) {
    if (exempt(p)) continue;
    if (!suffix_satisfies(record.leader(p), check_from,
                          [](sim::Pid l) { return l == kNoLeader; })) {
      fail("property 2: leader_" + std::to_string(p) +
           " != ? in the suffix (final=" +
           pid_str(record.leader(p).final_value()) + ")");
    }
  }

  // Property 1 applies iff some permanent candidate is timely.
  bool applicable = false;
  for (sim::Pid p : classes.pcandidates) {
    if (contains(timely, p)) applicable = true;
  }
  if (!applicable) return result;

  // Discover l: the common suffix leader of the permanent candidates.
  // Use a timely (else at least non-exempt) reference candidate -- an
  // exempt flickering candidate's output is frozen and stale.
  TBWF_ASSERT(!classes.pcandidates.empty(), "P-candidates empty");
  sim::Pid reference = classes.pcandidates.front();
  for (sim::Pid p : classes.pcandidates) {
    if (contains(timely, p)) {
      reference = p;
      break;
    }
    if (!exempt(p) && exempt(reference)) reference = p;
  }
  const sim::Pid ell = record.leader(reference).value_at(check_from);
  result.elected = ell;

  if (ell == kNoLeader) {
    fail("property 1b: permanent candidate " +
         std::to_string(classes.pcandidates.front()) +
         " has leader ? at check_from");
    return result;
  }

  // l must be a (permanent or repeated) candidate and timely.
  if (!contains(classes.pcandidates, ell) &&
      !contains(classes.rcandidates, ell)) {
    fail("elected " + pid_str(ell) + " is not a P- or R-candidate");
  }
  if (require_leader_permanent && !contains(classes.pcandidates, ell)) {
    fail("canonical use: elected " + pid_str(ell) +
         " is not a permanent candidate (Theorem 7)");
  }
  if (!contains(timely, ell)) {
    fail("elected " + pid_str(ell) + " is not timely");
  }

  // 1(a): eventually leader_l = l.
  if (!suffix_satisfies(record.leader(ell), check_from,
                        [ell](sim::Pid l) { return l == ell; })) {
    fail("property 1a: leader_" + pid_str(ell) + " != " + pid_str(ell) +
         " in the suffix");
  }

  // 1(b): every permanent candidate converges to l.
  for (sim::Pid p : classes.pcandidates) {
    if (exempt(p)) continue;
    if (!suffix_satisfies(record.leader(p), check_from,
                          [ell](sim::Pid l) { return l == ell; })) {
      fail("property 1b: leader_" + std::to_string(p) + " != " +
           pid_str(ell) + " in the suffix (final=" +
           pid_str(record.leader(p).final_value()) + ")");
    }
  }

  // 1(c): every repeated candidate stays in {?, l}.
  for (sim::Pid p : classes.rcandidates) {
    if (exempt(p)) continue;
    if (!suffix_satisfies(record.leader(p), check_from,
                          [ell](sim::Pid l) {
                            return l == kNoLeader || l == ell;
                          })) {
      fail("property 1c: leader_" + std::to_string(p) +
           " leaves {?, " + pid_str(ell) + "} in the suffix");
    }
  }

  return result;
}

}  // namespace tbwf::omega
