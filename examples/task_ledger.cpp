// Task ledger: a shared FIFO work queue on the TBWF stack.
//
// The scenario from the paper's motivation: a mostly-synchronous system
// where workers occasionally degrade. Producers enqueue jobs, consumers
// dequeue and "execute" them; one consumer flickers with growing gaps.
// The ledger (queue) stays consistent -- every job is dispatched exactly
// once -- and the healthy consumers keep draining it at full speed no
// matter how sick the flaky one gets.
//
//   ./task_ledger [steps] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

using namespace tbwf;

namespace {

struct LedgerStats {
  std::vector<std::int64_t> produced;
  std::vector<std::int64_t> consumed;
};

sim::Task producer(sim::SimEnv& env, core::TbwfObject<qa::Queue>& queue,
                   LedgerStats& stats) {
  std::int64_t job = 0;
  for (;;) {
    const std::int64_t id = env.pid() * 1000000 + job++;
    (void)co_await queue.invoke(env, qa::Queue::enqueue(id));
    stats.produced.push_back(id);
    // Think time between submissions.
    for (int i = 0; i < 32; ++i) co_await env.yield();
  }
}

sim::Task consumer(sim::SimEnv& env, core::TbwfObject<qa::Queue>& queue,
                   LedgerStats& stats) {
  for (;;) {
    const std::int64_t id = co_await queue.invoke(env, qa::Queue::dequeue());
    if (id >= 0) stats.consumed.push_back(id);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Step steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 6000000ULL;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  // p0, p1: producers (timely). p2, p3: consumers -- p3 flickers.
  const int n = 4;
  std::vector<sim::ActivitySpec> specs = {
      sim::ActivitySpec::timely(8), sim::ActivitySpec::timely(8),
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::growing_flicker(4000, 1000)};
  sim::World world(n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  core::TbwfSystem<qa::Queue> system(world, qa::Queue::State{},
                                     core::OmegaBackend::AtomicRegisters);

  std::vector<LedgerStats> stats(n);
  for (sim::Pid p = 0; p < 2; ++p) {
    world.spawn(p, "producer", [&, p](sim::SimEnv& env) {
      return producer(env, system.object(), stats[p]);
    });
  }
  for (sim::Pid p = 2; p < 4; ++p) {
    world.spawn(p, "consumer", [&, p](sim::SimEnv& env) {
      return consumer(env, system.object(), stats[p]);
    });
  }

  std::printf("running %llu steps...\n",
              static_cast<unsigned long long>(steps));
  world.run(steps);

  // Audit the ledger: every consumed job was produced, exactly once.
  std::multiset<std::int64_t> produced, consumed;
  std::size_t total_produced = 0;
  for (const auto& s : stats) {
    produced.insert(s.produced.begin(), s.produced.end());
    consumed.insert(s.consumed.begin(), s.consumed.end());
    total_produced += s.produced.size();
  }
  bool sound = true;
  std::int64_t duplicates = 0, phantoms = 0;
  for (const auto id : consumed) {
    if (consumed.count(id) > 1) ++duplicates;
    if (produced.count(id) == 0) ++phantoms;
  }
  sound = (duplicates == 0 && phantoms == 0);

  const auto backlog = system.object().qa().peek_frontier().state.size();
  std::printf("\njobs produced:   %zu\n", total_produced);
  std::printf("jobs dispatched: %zu  (healthy consumer: %zu, flaky: %zu)\n",
              consumed.size(), stats[2].consumed.size(),
              stats[3].consumed.size());
  std::printf("backlog:         %zu\n", backlog);
  std::printf("duplicates: %lld, phantoms: %lld -> ledger %s\n",
              static_cast<long long>(duplicates),
              static_cast<long long>(phantoms),
              sound ? "CONSISTENT" : "CORRUPT");
  std::printf("\nthe flaky consumer dispatched %.1f%% of what a healthy one "
              "did,\nwithout slowing the healthy one down.\n",
              stats[2].consumed.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(stats[3].consumed.size()) /
                        static_cast<double>(stats[2].consumed.size()));
  return sound ? 0 : 1;
}
