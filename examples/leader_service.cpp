// Leader service: Omega-Delta as a standalone dynamic leader elector.
//
// Processes join and leave the competition for leadership at their own
// pace (canonical use); one process flickers with growing gaps. The
// example prints the leadership timeline seen by each process and runs
// the same scenario on both implementations: Figure 3 (atomic
// registers + activity monitors) and Figure 6 (abortable registers).
//
//   ./leader_service [steps] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_registers.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

using namespace tbwf;

namespace {

std::vector<sim::ActivitySpec> scenario_specs() {
  return {
      sim::ActivitySpec::timely(8),                 // p0: timely, permanent
      sim::ActivitySpec::timely(8),                 // p1: timely, joins/leaves
      sim::ActivitySpec::growing_flicker(3000, 700),// p2: flaky, permanent
      sim::ActivitySpec::timely(8),                 // p3: never competes
  };
}

void print_timeline(const char* name,
                    const std::vector<sim::Trajectory<sim::Pid>>& leaders,
                    sim::Step run_end) {
  std::printf("\n[%s] leadership timeline (sampled):\n", name);
  for (std::size_t p = 0; p < leaders.size(); ++p) {
    std::printf("  p%zu: ", p);
    int shown = 0;
    for (const auto& [step, value] : leaders[p].points()) {
      if (shown++ > 8) {
        std::printf("...");
        break;
      }
      if (value == omega::kNoLeader) {
        std::printf("[%llu:?] ", static_cast<unsigned long long>(step));
      } else {
        std::printf("[%llu:p%d] ", static_cast<unsigned long long>(step),
                    value);
      }
    }
    const auto final = leaders[p].final_value();
    std::printf(" => final %s (stable since %llu / %llu)\n",
                final == omega::kNoLeader
                    ? "?"
                    : ("p" + std::to_string(final)).c_str(),
                static_cast<unsigned long long>(leaders[p].last_change()),
                static_cast<unsigned long long>(run_end));
  }
}

template <class OmegaImpl>
void drive(sim::World& world, OmegaImpl& omega) {
  // p0: permanent candidate. p1: joins/leaves canonically. p2: flaky
  // but permanently willing. p3: never competes.
  world.spawn(0, "cand", [&](sim::SimEnv& env) {
    return omega::permanent_candidate(env, omega.io(0));
  });
  world.spawn(1, "cand", [&](sim::SimEnv& env) {
    return omega::canonical_repeated_candidate(env, omega.io(1), 30000,
                                               30000);
  });
  world.spawn(2, "cand", [&](sim::SimEnv& env) {
    return omega::permanent_candidate(env, omega.io(2));
  });
  world.spawn(3, "cand", [&](sim::SimEnv& env) {
    return omega::never_candidate(env, omega.io(3));
  });
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Step steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 3000000ULL;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 3;
  const int n = 4;

  {
    sim::World world(
        n, std::make_unique<sim::TimelinessSchedule>(scenario_specs(), seed));
    omega::OmegaRegisters omega(world);
    omega.install_all();
    drive(world, omega);
    std::vector<sim::Trajectory<sim::Pid>> leaders(n);
    for (sim::Pid p = 0; p < n; ++p) {
      leaders[p].sample(0, omega.io(p).leader);
      leaders[p].attach(world, &omega.io(p).leader);
    }
    world.run(steps);
    print_timeline("Figure 3: atomic registers + activity monitors",
                   leaders, world.now());
  }

  {
    sim::World world(
        n, std::make_unique<sim::TimelinessSchedule>(scenario_specs(), seed));
    registers::ProbabilisticAbortPolicy policy(seed, 0.6, 0.6, 0.5);
    omega::OmegaAbortable omega(world, &policy);
    omega.install_all();
    drive(world, omega);
    std::vector<sim::Trajectory<sim::Pid>> leaders(n);
    for (sim::Pid p = 0; p < n; ++p) {
      leaders[p].sample(0, omega.io(p).leader);
      leaders[p].attach(world, &omega.io(p).leader);
    }
    world.run(steps * 2);  // abortable stack stabilizes more slowly
    print_timeline("Figure 6: abortable registers", leaders, world.now());
    std::printf("\n  register ops: %llu reads (%llu aborted), "
                "%llu writes (%llu aborted)\n",
                static_cast<unsigned long long>(world.total_reads()),
                static_cast<unsigned long long>(world.total_read_aborts()),
                static_cast<unsigned long long>(world.total_writes()),
                static_cast<unsigned long long>(world.total_write_aborts()));
  }

  std::printf("\nnote: the flaky p2 competes forever, yet a timely process "
              "ends up leading --\nthe graceful-degradation property of "
              "Omega-Delta (Definition 5 / Theorem 7).\n");
  return 0;
}
