// Leader service: Omega-Delta as a dynamic leader elector fronting a
// real request router.
//
// Processes join and leave the competition for leadership at their own
// pace (canonical use); one process flickers with growing gaps. The
// example prints the leadership timeline seen by each process AND
// drives the soak harness's leader-routed router (soak::SimLeaderService)
// over the same election: clients route request batches to whoever
// their local LEADER output names, and the printout shows what the
// churned election costs in route/commit latency and outage windows.
// Both implementations run: Figure 3 (atomic registers + activity
// monitors) and Figure 6 (abortable registers).
//
//   ./leader_service [steps] [seed] [--json] [--membership]
//
// --json replaces the human-readable report with one machine-readable
// JSON object (timelines, router stats, outage windows) on stdout.
// --membership reconfigures the group mid-run: p0 (the usual eventual
// leader) is removed from the view at steps/4 and re-admitted at
// steps/2. Its fenced rounds are counted, leadership re-stabilizes
// among the remaining members, and the printout names each epoch.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/membership.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_registers.hpp"
#include "sim/membership.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"
#include "soak/sim_service.hpp"

using namespace tbwf;

namespace {

std::vector<sim::ActivitySpec> scenario_specs() {
  return {
      sim::ActivitySpec::timely(8),                 // p0: timely, permanent
      sim::ActivitySpec::timely(8),                 // p1: timely, joins/leaves
      sim::ActivitySpec::growing_flicker(3000, 700),// p2: flaky, permanent
      sim::ActivitySpec::timely(8),                 // p3: never competes
  };
}

/// One backend's run: leadership timelines plus the router's verdict.
struct BackendRun {
  std::string name;
  std::vector<sim::Trajectory<sim::Pid>> leaders;
  sim::Step run_end = 0;
  soak::ServiceStats stats;
  soak::AvailabilityTracker availability;
  std::vector<core::MembershipEvent> membership;  // empty: static group
  std::uint64_t fenced_p0 = 0;
};

/// Drive the shared scenario on one omega backend. p1 joins/leaves
/// canonically and p3 never competes; both still observe leadership.
/// Clients run on p0, p2, p3 -- p1's LEADER view legitimately rests at
/// "?" while it is out of the competition (Definition 5), so routing
/// from it would starve by design, exactly as in the soak harness.
template <class OmegaImpl>
BackendRun drive(const char* name, sim::World& world, OmegaImpl& omega,
                 sim::Step steps,
                 const std::vector<core::MembershipEvent>& membership) {
  BackendRun run;
  run.name = name;
  run.membership = membership;
  const int n = 4;

  // With --membership the permanent candidates follow the view instead:
  // a removed process stops competing and the service fences its tenure.
  sim::MembershipDirector director(n);
  if (!membership.empty()) omega.set_membership(&director);

  omega.install_all();
  if (membership.empty()) {
    world.spawn(0, "cand", [&](sim::SimEnv& env) {
      return omega::permanent_candidate(env, omega.io(0));
    });
    world.spawn(2, "cand", [&](sim::SimEnv& env) {
      return omega::permanent_candidate(env, omega.io(2));
    });
  } else {
    world.spawn(0, "cand", [&](sim::SimEnv& env) {
      return omega::membership_candidate(env, omega.io(0), director);
    });
    world.spawn(2, "cand", [&](sim::SimEnv& env) {
      return omega::membership_candidate(env, omega.io(2), director);
    });
  }
  world.spawn(1, "cand", [&](sim::SimEnv& env) {
    return omega::canonical_repeated_candidate(env, omega.io(1), 30000,
                                               30000);
  });
  world.spawn(3, "cand", [&](sim::SimEnv& env) {
    return omega::never_candidate(env, omega.io(3));
  });

  soak::SimServiceOptions service_options;
  service_options.client_pids = {0, 2, 3};
  soak::SimLeaderService service(
      world,
      [&omega](sim::Pid p) -> const omega::OmegaIO& { return omega.io(p); },
      service_options);
  if (!membership.empty()) {
    service.set_membership(&director);
    director.install(world, membership);
  }
  service.install();

  run.leaders.resize(n);
  for (sim::Pid p = 0; p < n; ++p) {
    run.leaders[p].sample(0, omega.io(p).leader);
    run.leaders[p].attach(world, &omega.io(p).leader);
  }

  world.run(steps);
  run.run_end = world.now();
  service.finish(run.run_end);
  run.stats = service.stats();
  run.availability = service.availability();
  run.fenced_p0 = world.counters().get("membership.fenced.p0");
  return run;
}

void print_human(const BackendRun& run) {
  std::printf("\n[%s] leadership timeline (sampled):\n", run.name.c_str());
  for (std::size_t p = 0; p < run.leaders.size(); ++p) {
    std::printf("  p%zu: ", p);
    int shown = 0;
    for (const auto& [step, value] : run.leaders[p].points()) {
      if (shown++ > 8) {
        std::printf("...");
        break;
      }
      if (value == omega::kNoLeader) {
        std::printf("[%llu:?] ", static_cast<unsigned long long>(step));
      } else {
        std::printf("[%llu:p%d] ", static_cast<unsigned long long>(step),
                    value);
      }
    }
    const auto final = run.leaders[p].final_value();
    std::printf(" => final %s (stable since %llu / %llu)\n",
                final == omega::kNoLeader
                    ? "?"
                    : ("p" + std::to_string(final)).c_str(),
                static_cast<unsigned long long>(run.leaders[p].last_change()),
                static_cast<unsigned long long>(run.run_end));
  }
  std::printf("  router: %s\n", run.stats.summary().c_str());
  std::printf("  availability: %s\n", run.availability.summary().c_str());
  if (!run.membership.empty()) {
    std::printf("  epochs:\n");
    for (const auto& w : core::epoch_windows(
             static_cast<int>(run.leaders.size()), run.membership,
             run.run_end)) {
      std::string members;
      for (std::size_t p = 0; p < w.members.size(); ++p) {
        if (!w.members[p]) continue;
        if (!members.empty()) members += ",";
        members += "p" + std::to_string(p);
      }
      std::printf("    epoch %u [%llu,%llu) members={%s}\n", w.epoch,
                  static_cast<unsigned long long>(w.from),
                  static_cast<unsigned long long>(w.to), members.c_str());
    }
    std::printf("  fenced p0 rounds at the boundary: %llu\n",
                static_cast<unsigned long long>(run.fenced_p0));
  }
}

void print_json_histogram(const char* key, const soak::LogHistogram& h,
                          const char* trail) {
  std::printf("\"%s\":{\"count\":%llu,\"p50\":%llu,\"p99\":%llu,"
              "\"p999\":%llu,\"max\":%llu}%s",
              key, static_cast<unsigned long long>(h.count()),
              static_cast<unsigned long long>(h.p50()),
              static_cast<unsigned long long>(h.p99()),
              static_cast<unsigned long long>(h.p999()),
              static_cast<unsigned long long>(h.max()), trail);
}

void print_json(const std::vector<BackendRun>& runs, sim::Step steps,
                std::uint64_t seed) {
  std::printf("{\"example\":\"leader_service\",\"steps\":%llu,"
              "\"seed\":%llu,\"backends\":[",
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(seed));
  for (std::size_t b = 0; b < runs.size(); ++b) {
    const BackendRun& run = runs[b];
    std::printf("%s{\"name\":\"%s\",\"run_end\":%llu,\"timelines\":[",
                b ? "," : "", run.name.c_str(),
                static_cast<unsigned long long>(run.run_end));
    for (std::size_t p = 0; p < run.leaders.size(); ++p) {
      const auto final = run.leaders[p].final_value();
      std::printf("%s{\"pid\":%zu,\"final\":%d,\"last_change\":%llu,"
                  "\"points\":[",
                  p ? "," : "", p, static_cast<int>(final),
                  static_cast<unsigned long long>(
                      run.leaders[p].last_change()));
      bool first = true;
      for (const auto& [step, value] : run.leaders[p].points()) {
        std::printf("%s[%llu,%d]", first ? "" : ",",
                    static_cast<unsigned long long>(step),
                    static_cast<int>(value));
        first = false;
      }
      std::printf("]}");
    }
    std::printf("],\"router\":{\"submitted\":%llu,\"completed\":%llu,"
                "\"route_probes\":%llu,",
                static_cast<unsigned long long>(run.stats.submitted),
                static_cast<unsigned long long>(run.stats.completed),
                static_cast<unsigned long long>(run.stats.route_probes));
    print_json_histogram("route", run.stats.route, ",");
    print_json_histogram("ack", run.stats.ack, ",");
    print_json_histogram("commit", run.stats.commit, "},");
    std::printf("\"availability\":{\"unavailable_fraction\":%.6f,"
                "\"windows\":[",
                run.availability.unavailable_fraction());
    bool first = true;
    for (const auto& w : run.availability.windows()) {
      std::printf("%s{\"from\":%llu,\"to\":%llu,\"state\":\"%s\"}",
                  first ? "" : ",", static_cast<unsigned long long>(w.from),
                  static_cast<unsigned long long>(w.to),
                  soak::to_string(w.state));
      first = false;
    }
    std::printf("]}}");
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  sim::Step steps = 3000000ULL;
  std::uint64_t seed = 3;
  bool json = false;
  bool membership = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--membership") == 0) {
      membership = true;
    } else if (positional == 0) {
      steps = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    }
  }
  const int n = 4;

  // --membership: remove p0 a quarter in, re-admit it at the midpoint.
  std::vector<core::MembershipEvent> events;
  if (membership) {
    events = {{core::MembershipKind::kLeave, 0, -1, steps / 4},
              {core::MembershipKind::kJoin, 0, -1, steps / 2}};
  }

  std::vector<BackendRun> runs;
  {
    sim::World world(
        n, std::make_unique<sim::TimelinessSchedule>(scenario_specs(), seed));
    omega::OmegaRegisters omega(world);
    runs.push_back(drive("Figure 3: atomic registers + activity monitors",
                         world, omega, steps, events));
  }
  {
    sim::World world(
        n, std::make_unique<sim::TimelinessSchedule>(scenario_specs(), seed));
    registers::ProbabilisticAbortPolicy policy(seed, 0.6, 0.6, 0.5);
    omega::OmegaAbortable omega(world, &policy);
    // The abortable stack stabilizes more slowly; give it double time.
    runs.push_back(drive("Figure 6: abortable registers", world, omega,
                         steps * 2, events));
  }

  if (json) {
    print_json(runs, steps, seed);
    return 0;
  }
  for (const BackendRun& run : runs) print_human(run);
  std::printf("\nnote: the flaky p2 competes forever, yet a timely process "
              "ends up leading --\nthe graceful-degradation property of "
              "Omega-Delta (Definition 5 / Theorem 7). The router rides the "
              "same\nelection: route cost spikes exactly where the timeline "
              "shows \"?\" views.\n");
  return 0;
}
