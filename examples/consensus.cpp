// Consensus from abortable registers + partial synchrony.
//
// The paper's closing observation in Section 1.2: the abortable-register
// implementation of Omega-Delta implies that Omega -- a failure detector
// sufficient to solve consensus [4] -- can be implemented in a system
// with abortable registers and only one timely process. This example
// makes that executable: consensus IS a TBWF object of "write-once
// register" type, run here over the full abortable-register stack
// (abortable Omega-Delta + abortable-base universal object, Theorem 15).
//
// Five processes propose different values; one of them is degrading
// (correct but not timely) and one crashes mid-run. Agreement and
// validity hold, and every timely process decides.
//
//   ./consensus [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>

#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

using namespace tbwf;

namespace {

struct Decision {
  bool decided = false;
  bool won = false;
  std::int64_t value = qa::OnceRegister::kUndecided;
};

sim::Task proposer(sim::SimEnv& env,
                   core::TbwfObject<qa::OnceRegister, qa::AbortableBase>& obj,
                   Decision& out) {
  const std::int64_t my_value = 100 + env.pid();
  const auto r =
      co_await obj.invoke(env, qa::OnceRegister::propose(my_value));
  out.decided = true;
  out.won = r.won;
  out.value = r.value;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2026;
  const int n = 5;
  std::vector<sim::ActivitySpec> specs = {
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::growing_flicker(2000, 500),  // degrading
      sim::ActivitySpec::timely(8).crash(1000000),    // crashes mid-run
  };
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = sched->intended_timely();
  sim::World world(n, std::move(sched));
  world.schedule_crash(4, 1000000);

  registers::ProbabilisticAbortPolicy qa_policy(seed + 1, 0.5, 0.5, 0.5);
  registers::ProbabilisticAbortPolicy omega_policy(seed + 2, 0.5, 0.5, 0.5);
  core::TbwfSystem<qa::OnceRegister, qa::AbortableBase> sys(
      world, qa::OnceRegister::kUndecided,
      core::OmegaBackend::AbortableRegisters, &qa_policy, &omega_policy);

  std::vector<Decision> decisions(n);
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "propose", [&, p](sim::SimEnv& env) {
      return proposer(env, sys.object(), decisions[p]);
    });
  }

  world.run(30000000);

  std::printf("proposals: p0..p4 propose 100..104; p3 degrades, p4 "
              "crashes at step 1M\n\n");
  std::set<std::int64_t> decided_values;
  int winners = 0;
  for (sim::Pid p = 0; p < n; ++p) {
    const auto& d = decisions[p];
    std::printf("p%d: %s", p, d.decided ? "decided " : "undecided");
    if (d.decided) {
      std::printf("%lld%s", static_cast<long long>(d.value),
                  d.won ? "  (its own proposal won)" : "");
      decided_values.insert(d.value);
      if (d.won) ++winners;
    }
    std::printf("\n");
  }

  bool ok = decided_values.size() <= 1 && winners <= 1;
  for (const sim::Pid p : timely) {
    if (!decisions[p].decided) ok = false;
  }
  const bool validity =
      decided_values.empty() ||
      (*decided_values.begin() >= 100 && *decided_values.begin() < 100 + n);

  std::printf("\nagreement: %s   validity: %s   all timely decided: %s\n",
              decided_values.size() <= 1 ? "yes" : "VIOLATED",
              validity ? "yes" : "VIOLATED",
              ok ? "yes" : "NO");
  std::printf("\n(the whole stack -- leader election, universal object, "
              "and this consensus --\nran on abortable registers with a "
              "50%% abort-on-overlap adversary.)\n");
  return ok && validity ? 0 : 1;
}
