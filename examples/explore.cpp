// Command-line front end for the schedule explorer (docs/VERIFY.md).
//
// Explore the QA counter stack at bounded depth and grade every
// interleaving with the linearizability oracle:
//
//   explore [--n N] [--ops K] [--depth D] [--runs R] [--seed S]
//           [--mutate drop-fence] [--expect-violation]
//
// Replay a counterexample artifact written by a previous run (or by the
// CI verify-explore job):
//
//   explore --replay FILE [--mutate drop-fence]
//
// A found (or expected-and-found) violation is written to
// $TBWF_ARTIFACT_DIR when set. Exit status: 0 when the outcome matches
// expectations (clean by default, violating under --expect-violation,
// reproduced under --replay), 1 otherwise.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "sim/schedule.hpp"
#include "verify/artifact.hpp"
#include "verify/explorer.hpp"
#include "verify/qa_harness.hpp"

namespace {

using namespace tbwf;
using verify::CounterexampleArtifact;
using verify::ExplorerOptions;
using verify::QaExploreConfig;

struct Args {
  int n = 3;
  int ops = 1;
  std::size_t depth = 400;
  std::uint64_t runs = 12000;
  std::uint64_t seed = 1;
  bool drop_fence = false;
  bool expect_violation = false;
  std::string replay;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--n") {
      args.n = std::atoi(next());
    } else if (a == "--ops") {
      args.ops = std::atoi(next());
    } else if (a == "--depth") {
      args.depth = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--runs") {
      args.runs = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--mutate") {
      const char* m = next();
      if (m == nullptr || std::strcmp(m, "drop-fence") != 0) {
        std::fprintf(stderr, "unknown mutant (supported: drop-fence)\n");
        return false;
      }
      args.drop_fence = true;
    } else if (a == "--expect-violation") {
      args.expect_violation = true;
    } else if (a == "--replay") {
      const char* f = next();
      if (f == nullptr) return false;
      args.replay = f;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return args.n >= 2;
}

QaExploreConfig<qa::Counter> make_config(const Args& args) {
  auto config = verify::counter_explore_config(args.n, args.ops, args.seed);
  config.mutations.drop_decide_fence = args.drop_fence;
  return config;
}

int replay(const Args& args) {
  const auto artifact = CounterexampleArtifact::load(args.replay);
  if (!artifact.has_value()) {
    std::fprintf(stderr, "could not parse artifact %s\n",
                 args.replay.c_str());
    return 1;
  }
  Args run_args = args;
  run_args.n = artifact->n;
  run_args.seed = artifact->world_seed;
  auto factory = verify::make_qa_run_factory(make_config(run_args));
  auto run = factory(
      std::make_unique<sim::ScriptedSchedule>(artifact->schedule));
  run->world().run(static_cast<sim::Step>(artifact->schedule.size()));
  const std::string violation = run->check();
  const bool digest_ok =
      run->world().trace().digest() == artifact->trace_digest;
  std::printf("replayed %s (%zu steps)\n", args.replay.c_str(),
              artifact->schedule.size());
  std::printf("  digest:    %s\n", digest_ok ? "MATCH" : "MISMATCH");
  std::printf("  verdict:   %s\n",
              violation.empty() ? "clean" : violation.c_str());
  std::printf("%s", run->describe().c_str());
  return (digest_ok && !violation.empty()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: explore [--n N] [--ops K] [--depth D] [--runs R] "
                 "[--seed S] [--mutate drop-fence] [--expect-violation] "
                 "[--replay FILE]\n");
    return 2;
  }
  if (!args.replay.empty()) return replay(args);

  ExplorerOptions opt;
  opt.name = args.drop_fence ? "drop-decide-fence" : "counter";
  opt.max_depth = args.depth;
  opt.max_runs = args.runs;
  verify::Explorer explorer(verify::make_qa_run_factory(make_config(args)),
                            opt);
  const verify::ExploreResult result = explorer.explore();
  std::printf("explore n=%d ops/proc=%d depth<=%zu: %s\n", args.n, args.ops,
              args.depth, result.summary().c_str());

  if (result.violation_found) {
    const std::string saved =
        verify::save_artifact(result.artifact, opt.name + "_cex.txt");
    if (!saved.empty()) {
      std::printf("counterexample artifact: %s\n", saved.c_str());
    }
  }
  return result.violation_found == args.expect_violation ? 0 : 1;
}
