// Monitor dashboard: dynamic activity monitors A(p,q) in action.
//
// Process 0 monitors three peers with different health profiles and the
// example prints a periodic dashboard: the STATUS estimate and the
// FAULTCNTR suspicion counter for each, showing Definition 9 live --
// bounded suspicions for the timely and the willingly-idle peer,
// unbounded suspicions for the degrading one.
//
//   ./monitor_dashboard [steps] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "monitor/activity_monitor.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

using namespace tbwf;

int main(int argc, char** argv) {
  const sim::Step steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 2000000ULL;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 5;

  // p0: the observer. p1: healthy. p2: healthy but will go idle
  // willingly. p3: degrading (silent gaps double forever).
  const int n = 4;
  std::vector<sim::ActivitySpec> specs = {
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::growing_flicker(5000, 1500),
  };
  sim::World world(n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  monitor::MonitorMatrix monitors(world);
  monitors.install_all();

  // Observer watches everyone; everyone serves the observer.
  for (sim::Pid q = 1; q < n; ++q) {
    monitors.io(0, q).monitoring = true;
    monitors.active_for(q, 0).active_for = true;
  }

  std::printf("%12s | %-18s | %-18s | %-18s\n", "step", "p1 (healthy)",
              "p2 (will idle)", "p3 (degrading)");
  std::printf("-------------+--------------------+--------------------+"
              "--------------------\n");

  const int frames = 16;
  for (int frame = 1; frame <= frames; ++frame) {
    world.run(steps / frames);
    if (frame == frames / 2) {
      // p2 willingly deactivates halfway through: STATUS flips to
      // inactive but -- crucially -- FAULTCNTR stops growing (the -1
      // sentinel distinguishes "stopped" from "sick").
      monitors.active_for(2, 0).active_for = false;
    }
    char cols[3][32];
    for (sim::Pid q = 1; q < n; ++q) {
      const auto& io = monitors.io(0, q);
      std::snprintf(cols[q - 1], sizeof(cols[q - 1]), "%-8s faults=%llu",
                    monitor::to_string(io.status),
                    static_cast<unsigned long long>(io.fault_cntr));
    }
    std::printf("%12llu | %-18s | %-18s | %-18s\n",
                static_cast<unsigned long long>(world.now()), cols[0],
                cols[1], cols[2]);
  }

  std::printf("\nDefinition 9 in action:\n"
              "  p1: timely & active        -> status active, faults bounded\n"
              "  p2: stopped willingly      -> status inactive, faults "
              "bounded (sentinel)\n"
              "  p3: correct but untimely   -> status oscillates, faults "
              "grow without bound\n");
  return 0;
}
