// Quickstart: a timeliness-based wait-free shared counter.
//
// Four simulated processes hammer one counter implemented with the full
// TBWF stack (Omega-Delta + query-abortable universal object, Figure 7).
// Two processes are timely; two flicker with ever-growing silent gaps.
// The timely processes stay wait-free; the flickering ones only hurt
// themselves.
//
//   ./quickstart [steps] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

using namespace tbwf;

namespace {

sim::Task worker(sim::SimEnv& env, core::TbwfObject<qa::Counter>& counter) {
  for (;;) {
    // invoke() returns the counter value before our increment; under
    // TBWF it returns within finitely many of our own steps whenever we
    // are timely in the run.
    (void)co_await counter.invoke(env, qa::Counter::Op{1});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Step steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 4000000ULL;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 1;

  const int n = 4;
  std::vector<sim::ActivitySpec> specs = {
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::timely(8),
      sim::ActivitySpec::growing_flicker(2000, 500),
      sim::ActivitySpec::growing_flicker(3000, 800),
  };
  auto schedule = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = schedule->intended_timely();

  sim::World world(n, std::move(schedule));
  core::TbwfSystem<qa::Counter> system(world, 0,
                                       core::OmegaBackend::AtomicRegisters);
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "worker", [&](sim::SimEnv& env) {
      return worker(env, system.object());
    });
  }

  std::printf("running %llu steps (seed %llu)...\n",
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(seed));
  world.run(steps);

  const auto& log = system.object().log();
  std::printf("\n%-4s %-22s %12s %14s\n", "pid", "timeliness", "completed",
              "max gap");
  std::vector<sim::Pid> all;
  for (sim::Pid p = 0; p < n; ++p) all.push_back(p);
  const auto report = core::analyze_progress(
      log, world.now(), steps / 4, steps / 8, all);
  for (sim::Pid p = 0; p < n; ++p) {
    const bool is_timely =
        std::find(timely.begin(), timely.end(), p) != timely.end();
    std::printf("%-4d %-22s %12llu %14llu%s\n", p,
                is_timely ? "timely" : "flickering (untimely)",
                static_cast<unsigned long long>(report.of(p).completed),
                static_cast<unsigned long long>(
                    report.of(p).max_completion_gap),
                report.of(p).progressing ? "  <- wait-free" : "");
  }

  const auto verdict = core::check_tbwf(report, timely);
  std::printf("\ncounter value: %lld\nverdict: %s\n",
              static_cast<long long>(
                  system.object().qa().peek_frontier().state),
              verdict.summary().c_str());
  return verdict.holds ? 0 : 1;
}
